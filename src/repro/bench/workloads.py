"""Workload drivers.

Three load models:

- :class:`ClosedLoopDriver` — a fixed number of outstanding operations;
  each commit immediately triggers the next submission.  With enough
  outstanding operations this *saturates* the leader, which is the
  condition of the paper's throughput-vs-ensemble-size experiment.
- :class:`OpenLoopDriver` — Poisson arrivals at a target rate,
  independent of completions; used for the latency-vs-offered-load sweep
  where the interesting feature is the saturation knee.
- :class:`AggregateOpenLoopDriver` — *populations* of sessions modelled
  as a single arrival process per :class:`SessionClass`.  Superposition
  of N independent Poisson(r) processes is exactly Poisson(N·r), so a
  million simulated clients cost one event stream instead of a million
  driver objects — the scale-out seam for planetary-sized offered load.

All of them submit writes directly at the current leader
(``propose_op``), measuring the broadcast layer itself rather than
client networking, and survive leader changes by re-resolving the
leader and retrying.
"""

from repro.bench.metrics import LatencyRecorder, Timeline
from repro.common.errors import NotLeaderError
from repro.obs.metrics import StreamingHistogram


class _DriverBase:
    def __init__(self, cluster, op_factory, op_size, warmup=0.0,
                 timeline_bucket=0.1, latency_histogram=None):
        self.cluster = cluster
        self.op_factory = op_factory
        self.op_size = op_size
        self.latency = LatencyRecorder(
            warmup_until=cluster.sim.now + warmup
        )
        # Optional streaming histogram (repro.obs) fed alongside the
        # exact recorder; lets bench reports carry sketch percentiles.
        self.latency_histogram = latency_histogram
        self._warmup_until = cluster.sim.now + warmup
        self.timeline = Timeline(bucket=timeline_bucket)
        self.submitted = 0
        self.committed = 0
        self.stopped = False

    def stop(self):
        self.stopped = True

    def _submit_one(self):
        if self.stopped:
            return False
        leader = self.cluster.leader()
        if leader is None:
            return False
        submit_time = self.cluster.sim.now

        def on_commit(result, zxid, t0=submit_time):
            now = self.cluster.sim.now
            self.committed += 1
            self.latency.record(now, now - t0)
            if self.latency_histogram is not None and now >= self._warmup_until:
                self.latency_histogram.observe(now - t0)
            self.timeline.add(now)
            self._on_commit()

        try:
            leader.propose_op(
                self.op_factory(self.submitted), callback=on_commit,
                size=self.op_size,
            )
        except NotLeaderError:
            return False
        self.submitted += 1
        return True

    def _on_commit(self):
        """Subclass hook fired after each commit is recorded."""

    def results(self):
        """Summary dict shared by the experiment tables."""
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "latency": self.latency.summary(),
        }


class ClosedLoopDriver(_DriverBase):
    """Keeps *outstanding* operations permanently in flight.

    Operations in flight at a leader that crashes lose their callbacks
    (their transactions may still commit later, answered by nobody); a
    stall watchdog notices the silence and refills the window once a new
    leader establishes, so the driver keeps saturating the cluster
    across failovers.
    """

    def __init__(self, cluster, outstanding, op_factory, op_size,
                 warmup=0.0, retry_interval=0.05, stall_timeout=0.5,
                 timeline_bucket=0.1, latency_histogram=None):
        _DriverBase.__init__(
            self, cluster, op_factory, op_size, warmup=warmup,
            timeline_bucket=timeline_bucket,
            latency_histogram=latency_histogram,
        )
        self.outstanding = outstanding
        self.retry_interval = retry_interval
        self.stall_timeout = stall_timeout
        self._in_flight = 0
        self._last_activity = cluster.sim.now

    def start(self):
        for _ in range(self.outstanding):
            self._pump()
        self._arm_watchdog()
        return self

    def _pump(self):
        if self.stopped:
            return
        if self._submit_one():
            self._in_flight += 1
            self._last_activity = self.cluster.sim.now
        else:
            # No leader right now (election in progress): retry shortly.
            self.cluster.sim.schedule(self.retry_interval, self._pump)

    def _on_commit(self):
        self._in_flight -= 1
        self._last_activity = self.cluster.sim.now
        self._pump()

    def _arm_watchdog(self):
        if self.stopped:
            return
        self.cluster.sim.schedule(self.stall_timeout, self._watchdog)

    def _watchdog(self):
        if self.stopped:
            return
        silent = self.cluster.sim.now - self._last_activity
        if silent >= self.stall_timeout and self.cluster.leader() is not None:
            # The previous window died with a crashed leader; refill.
            self._in_flight = 0
            for _ in range(self.outstanding):
                self._pump()
        self._arm_watchdog()


class OpenLoopDriver(_DriverBase):
    """Poisson arrivals at *rate* operations per simulated second."""

    def __init__(self, cluster, rate, op_factory, op_size, warmup=0.0,
                 timeline_bucket=0.1, latency_histogram=None):
        _DriverBase.__init__(
            self, cluster, op_factory, op_size, warmup=warmup,
            timeline_bucket=timeline_bucket,
            latency_histogram=latency_histogram,
        )
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.rejected = 0
        self._rng = cluster.sim.random.stream("openloop")

    def start(self):
        self._schedule_next()
        return self

    def _schedule_next(self):
        if self.stopped:
            return
        delay = self._rng.expovariate(self.rate)
        self.cluster.sim.schedule(delay, self._arrival)

    def _arrival(self):
        if self.stopped:
            return
        if not self._submit_one():
            self.rejected += 1
        self._schedule_next()


#: Arrival models a :class:`SessionClass` understands.
ARRIVAL_MODELS = ("poisson", "uniform", "fixed")


class SessionClass:
    """Aggregate arrival model for a population of identical sessions.

    Instead of one driver object per simulated client, a class models
    the *population*: ``sessions`` clients each issuing
    ``rate_per_session`` ops per simulated second collapse into one
    arrival process at the aggregate rate.  For ``poisson`` this is
    mathematically exact (superposition of independent Poisson
    processes); ``uniform`` draws inter-arrivals uniformly on
    ``[0, 2/rate]`` (same mean, bounded burstiness) and ``fixed`` is a
    metronome at ``1/rate`` — useful for worst-case pacing studies.

    ``read_fraction`` of arrivals are reads, served locally at a live
    replica's state machine (reads in this system never touch the
    broadcast layer); the rest are ``put`` writes proposed at the
    leader.  ``op_size`` is either an int (fixed payload bytes) or
    ``("uniform", lo, hi)`` for a per-op size draw.
    """

    __slots__ = ("name", "sessions", "rate_per_session", "read_fraction",
                 "arrival", "op_size", "keys")

    def __init__(self, name, sessions, rate_per_session, read_fraction=0.0,
                 arrival="poisson", op_size=128, keys=64):
        if sessions < 1:
            raise ValueError("sessions must be >= 1")
        if rate_per_session <= 0:
            raise ValueError("rate_per_session must be positive")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if arrival not in ARRIVAL_MODELS:
            raise ValueError(
                "arrival must be one of %r" % (ARRIVAL_MODELS,)
            )
        self.name = name
        self.sessions = sessions
        self.rate_per_session = rate_per_session
        self.read_fraction = read_fraction
        self.arrival = arrival
        self.op_size = op_size
        self.keys = keys

    @property
    def aggregate_rate(self):
        """Offered ops per simulated second across the population."""
        return self.sessions * self.rate_per_session

    def sample_interarrival(self, rng):
        rate = self.aggregate_rate
        if self.arrival == "poisson":
            return rng.expovariate(rate)
        if self.arrival == "uniform":
            return rng.uniform(0.0, 2.0 / rate)
        return 1.0 / rate

    def sample_size(self, rng):
        if isinstance(self.op_size, int):
            return self.op_size
        kind, lo, hi = self.op_size
        if kind != "uniform":
            raise ValueError("unknown op_size distribution: %r" % (kind,))
        return rng.randint(lo, hi)

    def to_json(self):
        return {
            "name": self.name,
            "sessions": self.sessions,
            "rate_per_session": self.rate_per_session,
            "read_fraction": self.read_fraction,
            "arrival": self.arrival,
            "op_size": (
                self.op_size if isinstance(self.op_size, int)
                else list(self.op_size)
            ),
            "keys": self.keys,
        }


class _ClassState:
    """Per-class live counters and sketches inside the aggregate driver."""

    __slots__ = ("cls", "rng", "latency", "histogram", "submitted",
                 "committed", "reads", "read_misses", "rejected")

    def __init__(self, cls, rng, warmup_until):
        self.cls = cls
        self.rng = rng
        self.latency = LatencyRecorder(warmup_until=warmup_until)
        self.histogram = StreamingHistogram()
        self.submitted = 0
        self.committed = 0
        self.reads = 0
        self.read_misses = 0
        self.rejected = 0


class AggregateOpenLoopDriver:
    """Open-loop load from session *populations*, one stream per class.

    Each :class:`SessionClass` draws its arrivals, op sizes, and
    read/write coin flips from its own named PRNG stream
    (``aggload:<class>``), so adding a class never perturbs another
    class's schedule and the whole offered load is a deterministic
    function of the cluster seed.  Writes ride the normal
    ``propose_op`` path and record commit latency per class; reads are
    answered immediately from a live replica's state machine, modelling
    the read path this system actually has (reads never enter the
    broadcast pipeline).

    The driver exposes the same surface the bench runner expects from
    the per-client drivers — ``latency`` / ``timeline`` / ``submitted``
    / ``committed`` / ``results()`` — plus per-class breakdowns.
    """

    def __init__(self, cluster, classes, warmup=0.0, timeline_bucket=0.1,
                 latency_histogram=None):
        if not classes:
            raise ValueError("need at least one SessionClass")
        names = [cls.name for cls in classes]
        if len(set(names)) != len(names):
            raise ValueError("session class names must be unique")
        self.cluster = cluster
        self.latency = LatencyRecorder(
            warmup_until=cluster.sim.now + warmup
        )
        self.latency_histogram = latency_histogram
        self._warmup_until = cluster.sim.now + warmup
        self.timeline = Timeline(bucket=timeline_bucket)
        self.stopped = False
        self.classes = [
            _ClassState(
                cls,
                cluster.sim.random.stream("aggload:%s" % cls.name),
                self._warmup_until,
            )
            for cls in classes
        ]

    @property
    def sessions(self):
        """Total simulated client sessions across every class."""
        return sum(state.cls.sessions for state in self.classes)

    @property
    def submitted(self):
        return sum(
            state.submitted + state.reads + state.read_misses
            for state in self.classes
        )

    @property
    def committed(self):
        return sum(state.committed for state in self.classes)

    @property
    def rejected(self):
        return sum(state.rejected for state in self.classes)

    def start(self):
        for state in self.classes:
            self._schedule_next(state)
        return self

    def stop(self):
        self.stopped = True

    def _schedule_next(self, state):
        if self.stopped:
            return
        delay = state.cls.sample_interarrival(state.rng)
        self.cluster.sim.schedule(delay, lambda: self._arrival(state))

    def _arrival(self, state):
        if self.stopped:
            return
        cls, rng = state.cls, state.rng
        key = "key-%d" % rng.randrange(cls.keys)
        if cls.read_fraction and rng.random() < cls.read_fraction:
            self._read(state, key)
        else:
            self._write(state, key)
        self._schedule_next(state)

    def _read(self, state, key):
        """Serve a read at a deterministic live replica, locally."""
        live = [
            peer for _pid, peer in sorted(self.cluster.peers.items())
            if not peer.crashed
        ]
        if not live:
            state.read_misses += 1
            return
        peer = live[state.rng.randrange(len(live))]
        try:
            peer.sm.read(("get", key))
        except Exception:
            state.read_misses += 1
            return
        state.reads += 1

    def _write(self, state, key):
        leader = self.cluster.leader()
        if leader is None:
            state.rejected += 1
            return
        size = state.cls.sample_size(state.rng)
        submit_time = self.cluster.sim.now

        def on_commit(result, zxid, t0=submit_time):
            now = self.cluster.sim.now
            state.committed += 1
            sample = now - t0
            state.latency.record(now, sample)
            if now >= self._warmup_until:
                state.histogram.observe(sample)
                if self.latency_histogram is not None:
                    self.latency_histogram.observe(sample)
            self.latency.record(now, sample)
            self.timeline.add(now)

        try:
            leader.propose_op(
                ("put", key, "v" * size), callback=on_commit, size=size,
            )
        except NotLeaderError:
            state.rejected += 1
            return
        state.submitted += 1

    def results(self):
        """Aggregate summary plus per-class breakdowns."""
        return {
            "sessions": self.sessions,
            "submitted": self.submitted,
            "committed": self.committed,
            "latency": self.latency.summary(),
            "classes": {
                state.cls.name: {
                    "sessions": state.cls.sessions,
                    "offered_rate": state.cls.aggregate_rate,
                    "submitted": state.submitted,
                    "committed": state.committed,
                    "reads": state.reads,
                    "read_misses": state.read_misses,
                    "rejected": state.rejected,
                    "latency": state.latency.summary(),
                    "latency_sketch": state.histogram.snapshot(),
                }
                for state in self.classes
            },
        }

    def class_metrics(self, duration):
        """Flat dot-keyed per-class metrics for ``BENCH_*.json`` reports."""
        metrics = {"workload.sessions": self.sessions}
        for state in self.classes:
            prefix = "workload.class.%s" % state.cls.name
            metrics["%s.sessions" % prefix] = state.cls.sessions
            metrics["%s.committed" % prefix] = state.committed
            metrics["%s.reads" % prefix] = state.reads
            if duration > 0:
                metrics["%s.write_ops" % prefix] = (
                    state.latency.count() / duration
                )
                metrics["%s.read_ops" % prefix] = state.reads / duration
            summary = state.latency.summary()
            for key in ("mean", "p50", "p95", "p99"):
                if key in summary:
                    metrics["%s.latency.%s_ms" % (prefix, key)] = (
                        summary[key] * 1e3
                    )
        return metrics
