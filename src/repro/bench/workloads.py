"""Workload drivers.

Two classic load models:

- :class:`ClosedLoopDriver` — a fixed number of outstanding operations;
  each commit immediately triggers the next submission.  With enough
  outstanding operations this *saturates* the leader, which is the
  condition of the paper's throughput-vs-ensemble-size experiment.
- :class:`OpenLoopDriver` — Poisson arrivals at a target rate,
  independent of completions; used for the latency-vs-offered-load sweep
  where the interesting feature is the saturation knee.

Both submit directly at the current leader (``propose_op``), measuring
the broadcast layer itself rather than client networking, and both
survive leader changes by re-resolving the leader and retrying.
"""

from repro.bench.metrics import LatencyRecorder, Timeline
from repro.common.errors import NotLeaderError


class _DriverBase:
    def __init__(self, cluster, op_factory, op_size, warmup=0.0,
                 timeline_bucket=0.1, latency_histogram=None):
        self.cluster = cluster
        self.op_factory = op_factory
        self.op_size = op_size
        self.latency = LatencyRecorder(
            warmup_until=cluster.sim.now + warmup
        )
        # Optional streaming histogram (repro.obs) fed alongside the
        # exact recorder; lets bench reports carry sketch percentiles.
        self.latency_histogram = latency_histogram
        self._warmup_until = cluster.sim.now + warmup
        self.timeline = Timeline(bucket=timeline_bucket)
        self.submitted = 0
        self.committed = 0
        self.stopped = False

    def stop(self):
        self.stopped = True

    def _submit_one(self):
        if self.stopped:
            return False
        leader = self.cluster.leader()
        if leader is None:
            return False
        submit_time = self.cluster.sim.now

        def on_commit(result, zxid, t0=submit_time):
            now = self.cluster.sim.now
            self.committed += 1
            self.latency.record(now, now - t0)
            if self.latency_histogram is not None and now >= self._warmup_until:
                self.latency_histogram.observe(now - t0)
            self.timeline.add(now)
            self._on_commit()

        try:
            leader.propose_op(
                self.op_factory(self.submitted), callback=on_commit,
                size=self.op_size,
            )
        except NotLeaderError:
            return False
        self.submitted += 1
        return True

    def _on_commit(self):
        """Subclass hook fired after each commit is recorded."""

    def results(self):
        """Summary dict shared by the experiment tables."""
        return {
            "submitted": self.submitted,
            "committed": self.committed,
            "latency": self.latency.summary(),
        }


class ClosedLoopDriver(_DriverBase):
    """Keeps *outstanding* operations permanently in flight.

    Operations in flight at a leader that crashes lose their callbacks
    (their transactions may still commit later, answered by nobody); a
    stall watchdog notices the silence and refills the window once a new
    leader establishes, so the driver keeps saturating the cluster
    across failovers.
    """

    def __init__(self, cluster, outstanding, op_factory, op_size,
                 warmup=0.0, retry_interval=0.05, stall_timeout=0.5,
                 timeline_bucket=0.1, latency_histogram=None):
        _DriverBase.__init__(
            self, cluster, op_factory, op_size, warmup=warmup,
            timeline_bucket=timeline_bucket,
            latency_histogram=latency_histogram,
        )
        self.outstanding = outstanding
        self.retry_interval = retry_interval
        self.stall_timeout = stall_timeout
        self._in_flight = 0
        self._last_activity = cluster.sim.now

    def start(self):
        for _ in range(self.outstanding):
            self._pump()
        self._arm_watchdog()
        return self

    def _pump(self):
        if self.stopped:
            return
        if self._submit_one():
            self._in_flight += 1
            self._last_activity = self.cluster.sim.now
        else:
            # No leader right now (election in progress): retry shortly.
            self.cluster.sim.schedule(self.retry_interval, self._pump)

    def _on_commit(self):
        self._in_flight -= 1
        self._last_activity = self.cluster.sim.now
        self._pump()

    def _arm_watchdog(self):
        if self.stopped:
            return
        self.cluster.sim.schedule(self.stall_timeout, self._watchdog)

    def _watchdog(self):
        if self.stopped:
            return
        silent = self.cluster.sim.now - self._last_activity
        if silent >= self.stall_timeout and self.cluster.leader() is not None:
            # The previous window died with a crashed leader; refill.
            self._in_flight = 0
            for _ in range(self.outstanding):
                self._pump()
        self._arm_watchdog()


class OpenLoopDriver(_DriverBase):
    """Poisson arrivals at *rate* operations per simulated second."""

    def __init__(self, cluster, rate, op_factory, op_size, warmup=0.0,
                 timeline_bucket=0.1, latency_histogram=None):
        _DriverBase.__init__(
            self, cluster, op_factory, op_size, warmup=warmup,
            timeline_bucket=timeline_bucket,
            latency_histogram=latency_histogram,
        )
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.rejected = 0
        self._rng = cluster.sim.random.stream("openloop")

    def start(self):
        self._schedule_next()
        return self

    def _schedule_next(self):
        if self.stopped:
            return
        delay = self._rng.expovariate(self.rate)
        self.cluster.sim.schedule(delay, self._arrival)

    def _arrival(self):
        if self.stopped:
            return
        if not self._submit_one():
            self.rejected += 1
        self._schedule_next()
