"""Measurement primitives for the experiment harness."""

import math


def percentile(values, fraction):
    """The *fraction*-quantile (0..1) of *values* by linear interpolation."""
    if not values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


class LatencyRecorder:
    """Collects (timestamp, latency) samples with a warmup filter."""

    def __init__(self, warmup_until=0.0):
        self.warmup_until = warmup_until
        self.samples = []       # (commit_time, latency)
        self.discarded = 0

    def record(self, commit_time, latency):
        if commit_time < self.warmup_until:
            self.discarded += 1
            return
        self.samples.append((commit_time, latency))

    def latencies(self):
        return [latency for _time, latency in self.samples]

    def count(self):
        return len(self.samples)

    def mean(self):
        """Mean latency; raises ValueError if nothing was recorded.

        An empty recorder used to return NaN here, which propagated
        silently through bench-report arithmetic; failing loudly makes
        a broken measurement window a visible error instead.
        """
        values = self.latencies()
        if not values:
            raise ValueError("no latency samples recorded")
        return sum(values) / len(values)

    def pct(self, fraction):
        """The *fraction*-quantile; raises ValueError when empty."""
        values = self.latencies()
        if not values:
            raise ValueError("no latency samples recorded")
        return percentile(values, fraction)

    def summary(self):
        """Dict of the stats the experiment tables report.

        An empty recorder reports ``{"count": 0, "empty": True}`` so
        consumers can branch explicitly rather than meeting NaN.
        """
        if not self.samples:
            return {"count": 0, "empty": True}
        return {
            "count": self.count(),
            "mean": self.mean(),
            "p50": self.pct(0.50),
            "p95": self.pct(0.95),
            "p99": self.pct(0.99),
            "max": max(self.latencies()),
        }


class Timeline:
    """Time-bucketed event counts — the throughput-over-time series."""

    def __init__(self, bucket=0.1):
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket
        self._counts = {}

    def add(self, time, count=1):
        index = int(time / self.bucket)
        self._counts[index] = self._counts.get(index, 0) + count

    def series(self, start=None, end=None):
        """[(bucket_start_time, events_per_second)], gaps filled with 0."""
        if not self._counts:
            return []
        first = min(self._counts)
        last = max(self._counts)
        if start is not None:
            first = max(first, int(start / self.bucket))
        if end is not None:
            last = min(last, int(end / self.bucket))
        return [
            (index * self.bucket, self._counts.get(index, 0) / self.bucket)
            for index in range(first, last + 1)
        ]

    def total(self):
        return sum(self._counts.values())

    def min_rate(self, start=None, end=None):
        rates = [rate for _t, rate in self.series(start, end)]
        return min(rates) if rates else 0.0
