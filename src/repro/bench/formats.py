"""Plain-text table rendering for experiment output."""


def render_table(headers, rows, title=None):
    """Fixed-width ASCII table (returns a string)."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(row[i]) for row in text_rows))
        if text_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(columns[i].ljust(widths[i]) for i in range(len(columns)))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def _cell(value):
    if value is None:
        return "-"   # explicit "no measurement" marker (empty recorder)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)


def render_series(series, width=60, label="t"):
    """Tiny ASCII sparkline of a (time, value) series (returns a string)."""
    if not series:
        return "(empty series)"
    values = [value for _t, value in series]
    top = max(values) or 1.0
    blocks = " .:-=+*#%@"
    scaled = [
        blocks[min(len(blocks) - 1, int(value / top * (len(blocks) - 1)))]
        for value in values
    ]
    if len(scaled) > width:
        stride = len(scaled) / width
        scaled = [scaled[int(i * stride)] for i in range(width)]
    return "%s[%s] peak=%.0f" % (label, "".join(scaled), top)
