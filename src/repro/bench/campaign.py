"""Verification campaigns: many seeded adversarial runs, one verdict.

A campaign is the poor man's model checker: for each seed it *generates*
a declarative :class:`~repro.harness.schedule.ActionSchedule` from the
seed, *replays* it against a fresh cluster under client load, then
quiesces and checks the six PO broadcast properties plus replica-state
convergence.  Because generation and execution are decoupled, a failing
seed is more than a verdict: its schedule is attached to the outcome,
serializable to JSON, replayable bit for bit, and shrinkable to a
minimal repro with ``python -m repro shrink``.

Used by ``python -m repro campaign`` and by the long-running integration
tests.
"""

import json
import time

from repro.bench.formats import render_table
from repro.harness.cluster import Cluster
from repro.harness.replay import replay_schedule
from repro.harness.schedule import ActionSchedule
from repro.obs.metrics import StreamingHistogram

#: Schema tag of the machine-readable campaign report.  The report is
#: deliberately wall-clock-free: two runs of the same seeds — serial,
#: or merged from any number of parallel workers — must serialise to
#: byte-identical JSON (the parallel-smoke CI job ``cmp``s them).
CAMPAIGN_SCHEMA = "repro-campaign/v1"


class RunOutcome:
    """Result of one seeded adversarial run."""

    __slots__ = ("seed", "ok", "violations", "converged", "epochs",
                 "deliveries", "actions", "error", "schedule",
                 "signature", "health", "latency", "elapsed", "worker")

    def __init__(self, seed, ok, violations, converged, epochs,
                 deliveries, actions, error=None, schedule=None,
                 signature=(), health=None, latency=None, elapsed=None,
                 worker=None):
        self.seed = seed
        self.ok = ok
        self.violations = violations
        self.converged = converged
        self.epochs = epochs
        self.deliveries = deliveries
        self.actions = actions
        self.error = error
        self.schedule = schedule
        self.signature = signature
        self.health = health    # HealthMonitor.summary() dict, or None
        # Commit-latency sketch of the run's client load (a
        # StreamingHistogram); campaign reports merge these across runs.
        self.latency = latency
        # Attribution stamps: wall-clock seconds this run took and which
        # parallel worker executed it (0 for in-process serial runs).
        # Deliberately excluded from campaign_report() JSON.
        self.elapsed = elapsed
        self.worker = worker

    @property
    def passed(self):
        return self.ok and self.converged and self.error is None


def run_adversarial_campaign(seeds, n_voters=3, steps=10,
                             step_interval=0.5, op_interval=0.02,
                             leader_factory=None, with_health=False,
                             dissemination="leader-direct",
                             profile="default", workers=1):
    """Run one adversarial scenario per seed; returns [RunOutcome].

    With ``with_health=True`` every run is traced (protocol events
    only) and replayed through a
    :class:`~repro.obs.health.HealthMonitor`, so each outcome carries
    a health summary alongside the property verdict — the campaign's
    answer to "it didn't violate anything, but was it *healthy*?".
    ``dissemination`` runs the whole campaign under a non-default
    propagation topology (``repro.DISSEMINATION_TOPOLOGIES``).
    ``profile="ops"`` swaps the crash/partition adversary for the
    operational one (:meth:`ActionSchedule.generate_ops`): snapshots,
    retention-driven compaction, one-way cuts, and clock skews join
    the fault mix.  ``workers > 1`` farms the seeds across processes
    (:func:`repro.bench.parallel.run_parallel_campaign`); outcomes come
    back in seed order either way, so reports are byte-identical.
    """
    from repro.bench.parallel import run_parallel_campaign

    return run_parallel_campaign(
        seeds, workers=workers, n_voters=n_voters, steps=steps,
        step_interval=step_interval, op_interval=op_interval,
        leader_factory=leader_factory, with_health=with_health,
        dissemination=dissemination, profile=profile,
    )


def _one_run(seed, n_voters=3, steps=10, step_interval=0.5,
             op_interval=0.02, leader_factory=None, with_health=False,
             dissemination="leader-direct", profile="default"):
    started = time.perf_counter()
    if profile == "ops":
        schedule = ActionSchedule.generate_ops(
            seed, n_voters=n_voters, steps=steps,
            step_interval=step_interval, op_interval=op_interval,
        )
    elif profile == "default":
        schedule = ActionSchedule.generate(
            seed, n_voters=n_voters, steps=steps,
            step_interval=step_interval, op_interval=op_interval,
        )
    else:
        raise ValueError("unknown campaign profile: %r" % (profile,))
    tracer = None
    if with_health:
        from repro.obs.trace import Tracer

        tracer = Tracer()
        tracer.disable("net.")
    latency = StreamingHistogram()
    result = replay_schedule(
        schedule, n_voters=n_voters, seed=seed, op_interval=op_interval,
        leader_factory=leader_factory, tracer=tracer,
        dissemination=dissemination, latency_histogram=latency,
    )
    health = None
    if tracer is not None:
        from repro.obs.health import HealthMonitor

        monitor = HealthMonitor()
        monitor.feed(tracer.events).finish()
        health = monitor.summary()
    return RunOutcome(
        seed=seed,
        ok=result.ok,
        violations=result.violations,
        converged=result.converged,
        epochs=result.epochs,
        deliveries=result.deliveries,
        actions=schedule.legacy_pairs(),
        error=result.error,
        schedule=schedule,
        signature=result.signature,
        health=health,
        latency=latency,
        elapsed=time.perf_counter() - started,
        worker=0,
    )


def run_partition_campaign_zab(seeds, n_voters=3, steps=10,
                               flap_period=0.4, op_interval=0.01):
    """Partition-only adversary against Zab (companion to the Paxos
    variant below; same fault pattern, same load)."""
    results = []
    for seed in seeds:
        cluster = Cluster(n_voters, seed=seed).start()
        cluster.run_until_stable(timeout=60)
        _drive_partitions(cluster, cluster.sim, seed, steps, flap_period,
                          op_interval, _zab_submit(cluster))
        cluster.heal()
        cluster.run(3.0)
        report = cluster.check_properties()
        results.append((seed, sorted(report.violated_properties())))
    return results


def run_partition_campaign_paxos(seeds, n_replicas=3, steps=10,
                                 flap_period=0.4, op_interval=0.01,
                                 max_outstanding=8):
    """Partition-only adversary against pipelined Paxos.

    Unlike the paper's hand-crafted counter-example (E4), nothing here
    is scripted: leaders change because partitions trip the failure
    detector.  A fraction of seeds organically violate primary
    integrity — a fresh Paxos leader starts broadcasting right after
    phase 1, *before* its state covers the re-proposed suffix, which is
    exactly the barrier Zab's synchronisation phase enforces.
    """
    from repro.net import NetworkConfig
    from repro.paxos import PaxosCluster

    results = []
    for seed in seeds:
        cluster = PaxosCluster(
            n_replicas, seed=seed, max_outstanding=max_outstanding,
            leader_timeout_ticks=3,
            net_config=NetworkConfig(),
        ).start()
        cluster.run_until_leader(timeout=60)
        _drive_partitions(cluster, cluster.sim, seed, steps, flap_period,
                          op_interval, _paxos_submit(cluster))
        cluster.heal()
        cluster.run(3.0)
        report = cluster.check_properties()
        results.append((seed, sorted(report.violated_properties())))
    return results


def _zab_submit(cluster):
    def submit():
        leader = cluster.leader()
        if leader is not None:
            try:
                leader.propose_op(("incr", "counter", 1))
            except Exception:
                pass
    return submit


def _paxos_submit(cluster):
    def submit():
        leader = cluster.leader()
        if leader is not None:
            try:
                leader.submit_op(("incr", "counter", 1))
            except Exception:
                pass
    return submit


def _drive_partitions(cluster, sim, seed, steps, flap_period, op_interval,
                      submit):
    rng = sim.random.stream("partition-adversary")

    def load_tick():
        submit()
        sim.schedule(op_interval, load_tick)

    load_tick()
    members = list(
        getattr(cluster, "peers", getattr(cluster, "replicas", {}))
    )
    for _step in range(steps):
        cluster.run(flap_period)
        roll = rng.random()
        if roll < 0.6 and len(members) > 2:
            victim = rng.choice(members)
            cluster.partition({victim})
            cluster.run(flap_period)
            cluster.heal()
        else:
            cluster.heal()


def render_comparison(zab_results, paxos_results):
    """Side-by-side organic-violation table for E4b.

    Result lists merged from parallel workers may arrive in any order;
    everything here aggregates by value and sorts by seed, so the table
    is independent of how the runs were scheduled.
    """
    zab_bad = sorted(seed for seed, violations in zab_results if violations)
    paxos_bad = sorted(
        seed for seed, violations in paxos_results if violations
    )
    properties = sorted({
        prop
        for _seed, violations in paxos_results
        for prop in violations
    })
    rows = [
        ("zab", len(zab_results), len(zab_bad), ", ".join(
            str(seed) for seed in zab_bad) or "-", "-"),
        ("paxos (8 outstanding)", len(paxos_results), len(paxos_bad),
         ", ".join(str(seed) for seed in paxos_bad) or "-",
         ", ".join(properties) or "-"),
    ]
    return render_table(
        ["system", "seeds", "violating seeds", "which", "properties"],
        rows,
        title="E4b: organic PO violations under partition fault "
              "injection (unscripted)",
    )


def render_campaign(outcomes):
    """Summary table plus a verdict line.

    The table is sorted by seed and every aggregate is computed over
    the outcome *values*, never their positions — merged multi-worker
    outcome lists render identically however the runs were interleaved.
    When any outcome carries parallel attribution stamps, a ``worker``
    and a wall-clock ``ms`` column join the table.
    """
    ordered = sorted(outcomes, key=lambda outcome: outcome.seed)
    with_health = any(outcome.health is not None for outcome in ordered)
    with_worker = any(outcome.worker is not None for outcome in ordered)
    rows = [
        (
            outcome.seed,
            "pass" if outcome.passed else "FAIL",
            len(outcome.actions),
            max(outcome.epochs) if outcome.epochs else 0,
            outcome.deliveries,
        )
        + (
            (
                outcome.health["verdict"] if outcome.health is not None
                else "-",
            )
            if with_health else ()
        )
        + (
            (
                "-" if outcome.worker is None else outcome.worker,
                "-" if outcome.elapsed is None
                else "%.0f" % (outcome.elapsed * 1e3),
            )
            if with_worker else ()
        )
        + (
            outcome.error or ", ".join(outcome.violations) or
            ("diverged" if not outcome.converged else ""),
        )
        for outcome in ordered
    ]
    table = render_table(
        ["seed", "verdict", "faults", "max epoch", "deliveries"]
        + (["health"] if with_health else [])
        + (["worker", "ms"] if with_worker else []) + ["notes"],
        rows,
        title="Adversarial campaign (%d runs)" % len(ordered),
    )
    failed = [outcome for outcome in ordered if not outcome.passed]
    verdict = (
        "ALL %d RUNS PASSED" % len(ordered)
        if not failed
        else "%d/%d RUNS FAILED (seeds: %s)"
        % (len(failed), len(ordered),
           [outcome.seed for outcome in failed])
    )
    lines = [table, verdict]
    for outcome in failed:
        if outcome.schedule is None:
            continue
        lines.append("")
        lines.append(
            "seed %d schedule (replay with `repro shrink --seed %d`):"
            % (outcome.seed, outcome.seed)
        )
        lines.append(outcome.schedule.dumps())
    return "\n".join(lines)


def _signature_json(signature):
    """JSON-safe form of a replay violation signature."""
    return [
        [prop, None if zxid is None else list(zxid)]
        for prop, zxid in signature
    ]


def campaign_report(outcomes, params=None):
    """Machine-readable campaign verdict (``repro-campaign/v1``).

    Contains only simulation-deterministic facts: per-seed verdicts,
    violation signatures, failing schedules, and the latency sketch
    merged across runs with :meth:`StreamingHistogram.merge` (exact at
    the bucket level, so the merged percentiles equal a single
    histogram that observed every run's samples).  Wall-clock elapsed
    and worker stamps are deliberately left out — they live on the
    :class:`RunOutcome` objects and the rendered table — which is what
    makes serial and N-worker reports byte-identical.
    """
    runs = []
    merged_latency = StreamingHistogram()
    for outcome in sorted(outcomes, key=lambda outcome: outcome.seed):
        row = {
            "seed": outcome.seed,
            "passed": outcome.passed,
            "ok": outcome.ok,
            "converged": outcome.converged,
            "violations": sorted(outcome.violations),
            "signature": _signature_json(outcome.signature),
            "deliveries": outcome.deliveries,
            "epochs": sorted(outcome.epochs),
            "actions": len(outcome.actions),
            "error": outcome.error,
        }
        if outcome.health is not None:
            row["health"] = outcome.health
        if outcome.latency is not None:
            merged_latency.merge(outcome.latency)
            row["latency"] = outcome.latency.snapshot()
        if not outcome.passed and outcome.schedule is not None:
            row["schedule"] = outcome.schedule.to_json()
        runs.append(row)
    failed = sorted(
        outcome.seed for outcome in outcomes if not outcome.passed
    )
    return {
        "schema": CAMPAIGN_SCHEMA,
        "params": params or {},
        "runs": runs,
        "summary": {
            "runs": len(runs),
            "passed": len(runs) - len(failed),
            "failed_seeds": failed,
            "deliveries": sum(
                outcome.deliveries for outcome in outcomes
            ),
            "latency": merged_latency.snapshot(),
        },
    }


def write_campaign_report(outcomes, path, params=None):
    """Write :func:`campaign_report` as sorted, indented JSON."""
    report = campaign_report(outcomes, params=params)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
