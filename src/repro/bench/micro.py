"""Wall-clock microbenchmarks of the three simulation hot paths.

Unlike everything else in :mod:`repro.bench` — which measures *simulated*
time — this module measures **wall-clock** throughput of the Python
machinery itself: how many kernel events, fabric messages, and checker
events per real second the toolkit can push.  Those rates bound every
experiment and every ``repro explore`` campaign, so they are tracked as
first-class, regression-gated metrics (``BENCH_micro.json`` against
``benchmarks/micro_baseline.json``).

Four probes, one per hot layer:

- **kernel** — steady-state event-loop throughput: timer chains that
  reschedule themselves plus a cancel-churn component (every tick arms a
  timeout and cancels it on the next, the dominant pattern protocol
  timers produce).  Reported as ``kernel.events_per_s``.
- **fabric** — per-message overhead of :class:`repro.net.Network`:
  a leader-shaped node broadcasting fixed-size payloads to *n* followers
  through the full send/arrival/deliver path.  Reported as
  ``fabric.messages_per_s``.
- **checker** — PO-property checking throughput over a synthetic
  many-epoch trace: the post-hoc :func:`repro.checker.check_all` pass
  (``checker.check_all_events_per_s``) and, when available, the
  incremental :class:`repro.checker.CheckerState` consuming the same
  events one at a time (``checker.events_per_s``).
- **explore** — end-to-end states/second of a small exhaustive
  ``repro explore`` run, the metric the DFS campaign actually buys with
  the three layers above.  Reported as ``explore.states_per_s`` and
  ``explore.runs_per_s``.
- **dissemination** — a committed-write loop through the whole peer
  stack, once per propagation topology (leader-direct, chain, tree,
  ring).  Reports wall-clock ``dissemination.<name>.messages_per_s``
  plus the *deterministic* ``.leader_egress_bytes_per_txn`` that
  separates the topologies (∝ n-1 for leader-direct, ~flat for
  chain/ring, ∝ fan-out for tree).
- **campaign** — end-to-end adversarial-campaign throughput through
  :func:`repro.bench.parallel.run_parallel_campaign`:
  ``campaign.runs_per_s`` plus the deterministic ``campaign.runs``
  count.
- **parallel explore** — the partitioned subtree driver
  (:func:`repro.bench.parallel.parallel_explore`) on the same small
  search as the serial explore probe, with a process pool:
  ``explore.parallel.states_per_s`` plus deterministic
  ``explore.parallel.units`` / ``explore.parallel.runs`` pins (the
  decomposition itself must never drift).
- **workload** — aggregate session-class load vs per-client drivers at
  the same offered rate: ``workload.sim_clients_per_s`` (simulated
  client-seconds per wall second with one
  :class:`~repro.bench.workloads.SessionClass` standing in for a
  million clients), ``workload.perclient_sim_clients_per_s`` (the same
  measure with one ``OpenLoopDriver`` per client), their ratio
  ``workload.aggregate_speedup``, and the deterministic
  ``workload.committed`` count.
- **tracing** — the observability overhead probe: the same committed-
  write loop under four instrumentation postures — tracer off,
  flight-recorder-only (the always-on black box), deterministic
  sampling, and full tracing.  ``tracing.<mode>.relative_throughput``
  normalises each mode against tracer-off, immune to runner-speed
  differences, and the gated ``tracing.recorder.overhead`` pins the
  black box's hot-path cost at ≤5%; the deterministic ``tracing.
  sampled.events`` / ``tracing.full.events`` counts double as a
  cross-platform sampling-determinism check.

Workloads are deterministic (fixed seeds, fixed op counts); only the
clock is real, so run-to-run noise is scheduler jitter plus CPU-speed
differences between machines.  The committed baseline therefore carries
*generous* tolerances — the gate is meant to catch order-of-magnitude
hot-path regressions, not 10% wobble.
"""

import gc
import statistics
import time

from repro.bench.report import make_report, write_report

#: Benchmarked op counts, chosen so the whole suite runs in a few
#: seconds on a developer laptop while each probe still measures at
#: least ~10^5 operations.
KERNEL_EVENTS = 200_000
FABRIC_MESSAGES = 60_000
CHECKER_EVENTS = 60_000
EXPLORE_DEPTH = 3
DISSEMINATION_OPS = 400
TRACING_OPS = 5000
TRACING_SAMPLE_RATE = 8
CAMPAIGN_SEEDS = 6
CAMPAIGN_STEPS = 4
PARALLEL_WORKERS = 4
WORKLOAD_SESSIONS = 1_000_000
WORKLOAD_CLIENTS = 128
WORKLOAD_RATE = 400.0          # total offered ops/s, both load shapes
WORKLOAD_DURATION = 1.0        # simulated seconds per measurement


def _best_of(fn, repeat):
    """Run *fn* (returns ops) *repeat* times; return the best ops/sec.

    Best-of is the standard microbench estimator: the minimum elapsed
    time is the run least disturbed by the OS, and wall-clock noise is
    strictly additive.
    """
    best = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        ops = fn()
        elapsed = time.perf_counter() - t0
        if elapsed > 0:
            best = max(best, ops / elapsed)
    return best


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------

def bench_kernel(events=KERNEL_EVENTS, chains=32, repeat=3):
    """Steady-state event-loop throughput, in events/second.

    *chains* self-rescheduling timers keep the heap at a realistic
    depth; every firing also arms a pseudo-timeout that the next firing
    cancels, so the bench exercises schedule, fire, *and* cancel — the
    full per-event life cycle the protocol layer generates.
    """
    from repro.sim import Simulator

    def run_once():
        sim = Simulator(seed=1)

        def _noop():
            pass

        def make_tick(period):
            armed = [None]

            def tick():
                stale = armed[0]
                if stale is not None:
                    stale.cancel()
                armed[0] = sim.schedule(period * 10, _noop)
                sim.schedule(period, tick)

            return tick

        for chain in range(chains):
            # Coprime-ish periods so firings interleave instead of
            # arriving in lockstep bursts.
            sim.schedule(0.0, make_tick(0.001 + chain * 1e-5))
        try:
            sim.run(max_events=events)
        except Exception:
            pass  # SimulationLimitError is the expected exit
        return sim.events_fired

    rate = _best_of(run_once, repeat)
    return {
        "kernel.events_per_s": rate,
        "kernel.events": float(events),
    }


# ---------------------------------------------------------------------------
# Fabric
# ---------------------------------------------------------------------------

class _MicroPayload:
    """A Zab-proposal-shaped payload: carries a zxid and a wire size."""

    __slots__ = ("zxid", "body")

    def __init__(self, body):
        self.zxid = None
        self.body = body

    def wire_size(self):
        return 64 + len(self.body)


def bench_fabric(messages=FABRIC_MESSAGES, followers=4, repeat=3):
    """Per-message fabric overhead, in delivered messages/second.

    One leader-shaped sender broadcasts to *followers* receivers in
    rounds, with the bandwidth model on — the exact shape of the Zab
    commit path that saturates experiment E1.
    """
    from repro.net import Network, NetworkConfig
    from repro.sim import Simulator

    rounds = max(1, messages // followers)

    def run_once():
        sim = Simulator(seed=1)
        net = Network(sim, NetworkConfig(bandwidth_bps=1e9))
        received = {"n": 0}

        def handler(src, payload):
            received["n"] += 1

        net.register(0, handler)
        dsts = list(range(1, followers + 1))
        for dst in dsts:
            net.register(dst, handler)
        payload = _MicroPayload(b"x" * 512)

        def pump(left):
            net.broadcast(0, dsts, payload)
            if left > 1:
                sim.schedule(0.0005, pump, left - 1)

        sim.schedule(0.0, pump, rounds)
        sim.run()
        return received["n"]

    rate = _best_of(run_once, repeat)
    return {
        "fabric.messages_per_s": rate,
        "fabric.messages": float(rounds * followers),
    }


# ---------------------------------------------------------------------------
# Checker
# ---------------------------------------------------------------------------

def _synthetic_trace(events, processes=5, epochs=4):
    """A clean multi-epoch trace: every process delivers every txn."""
    from repro.checker import Trace
    from repro.zab.zxid import Zxid

    trace = Trace()
    # One delivery per (txn, process) plus one broadcast per txn.
    txns = max(1, events // (processes + 1))
    per_epoch = max(1, txns // epochs)
    position = 0
    for txn in range(txns):
        epoch = min(1 + txn // per_epoch, epochs)
        zxid = Zxid(epoch, txn + 1)
        txn_id = "t%d" % txn
        trace.record_broadcast(1, epoch, zxid, txn_id)
        position += 1
        for process in range(1, processes + 1):
            trace.record_delivery(
                process, 1, position, zxid, txn_id, epoch=epoch
            )
    return trace


def bench_checker(events=CHECKER_EVENTS, processes=5, repeat=3):
    """Property-checking throughput, in trace events/second.

    Measures the post-hoc ``check_all`` pass always, and the
    incremental ``CheckerState`` (one ``observe`` call per event plus a
    final verdict) when the current tree provides it.
    """
    trace = _synthetic_trace(events, processes=processes)
    total = len(trace.broadcasts) + len(trace.deliveries)

    from repro.checker import check_all

    def posthoc_once():
        report = check_all(trace)
        assert report.ok
        return total

    metrics = {
        "checker.check_all_events_per_s": _best_of(posthoc_once, repeat),
        "checker.events": float(total),
    }

    try:
        from repro.checker import CheckerState
    except ImportError:
        return metrics

    def incremental_once():
        state = CheckerState()
        observe_broadcast = state.observe_broadcast
        observe_delivery = state.observe_delivery
        broadcasts = iter(trace.broadcasts)
        deliveries = iter(trace.deliveries)
        next_b = next(broadcasts, None)
        next_d = next(deliveries, None)
        while next_b is not None or next_d is not None:
            if next_d is None or (
                next_b is not None and next_b.index < next_d.index
            ):
                observe_broadcast(next_b)
                next_b = next(broadcasts, None)
            else:
                observe_delivery(next_d)
                next_d = next(deliveries, None)
        assert state.ok
        return total

    metrics["checker.events_per_s"] = _best_of(incremental_once, repeat)
    return metrics


# ---------------------------------------------------------------------------
# Explore
# ---------------------------------------------------------------------------

def bench_explore(depth=EXPLORE_DEPTH, peers=3, repeat=3):
    """End-to-end explorer throughput on a small exhaustive search.

    states/second is the composite number the three layers above buy:
    each explored state is one full boot-run-quiesce-check execution.
    """
    from repro.mc import explore_schedules

    stats = {}

    def run_once():
        result = explore_schedules(
            peers=peers, depth=depth, seed=0,
            max_schedules=512, max_states=4096, max_violations=0,
        )
        stats["states"] = result.states_visited
        stats["runs"] = result.runs
        return result.states_visited

    rate = _best_of(run_once, repeat)
    runs_rate = rate * stats["runs"] / max(1, stats["states"])
    return {
        "explore.states_per_s": rate,
        "explore.runs_per_s": runs_rate,
        "explore.states": float(stats["states"]),
        "explore.runs": float(stats["runs"]),
    }


# ---------------------------------------------------------------------------
# Campaign and parallel explore
# ---------------------------------------------------------------------------

def bench_campaign(seeds=CAMPAIGN_SEEDS, steps=CAMPAIGN_STEPS, repeat=2):
    """Adversarial-campaign throughput, in full seeded runs/second.

    Drives the same :func:`run_parallel_campaign` path the CLI uses
    (in-process, one worker): each run is a generate + replay + quiesce
    + check cycle, so this is the end-to-end cost of one campaign seed.
    """
    from repro.bench.parallel import run_parallel_campaign

    def run_once():
        outcomes = run_parallel_campaign(
            range(seeds), workers=1, steps=steps,
        )
        assert len(outcomes) == seeds
        return len(outcomes)

    return {
        "campaign.runs_per_s": _best_of(run_once, repeat),
        "campaign.runs": float(seeds),
    }


def bench_parallel_explore(depth=EXPLORE_DEPTH, peers=3,
                           workers=PARALLEL_WORKERS, repeat=1):
    """Partitioned-explorer throughput across a process pool.

    Same small search as :func:`bench_explore`, driven through
    :func:`repro.bench.parallel.parallel_explore` with *workers*
    processes.  The rate scales with cores (each subtree unit is an
    independent process); the ``units`` / ``runs`` counts are
    simulation-deterministic and pinned tightly — the subtree
    decomposition itself must never drift.
    """
    from repro.bench.parallel import parallel_explore
    from repro.mc.explorer import ExplorerConfig

    stats = {}

    def run_once():
        result = parallel_explore(ExplorerConfig(
            peers=peers, depth=depth, seed=0,
            max_schedules=512, max_states=4096, max_violations=0,
        ), workers=workers)
        stats["states"] = result.states_visited
        stats["runs"] = result.runs
        stats["units"] = len(result.unit_results)
        return result.states_visited

    rate = _best_of(run_once, repeat)
    return {
        "explore.parallel.states_per_s": rate,
        "explore.parallel.states": float(stats["states"]),
        "explore.parallel.runs": float(stats["runs"]),
        "explore.parallel.units": float(stats["units"]),
    }


# ---------------------------------------------------------------------------
# Aggregate workload
# ---------------------------------------------------------------------------

def bench_workload(sessions=WORKLOAD_SESSIONS, clients=WORKLOAD_CLIENTS,
                   rate=WORKLOAD_RATE, duration=WORKLOAD_DURATION,
                   repeat=2):
    """Simulated-clients-per-wall-second: aggregate vs per-client load.

    Both measurements drive the *same* cluster shape with the same
    total offered rate for the same simulated duration; the only
    difference is the load model.  The aggregate side models *sessions*
    clients as one :class:`SessionClass` (cost independent of the
    population size); the per-client side boots one ``OpenLoopDriver``
    per client, which is why it stops at ``clients`` — a million
    driver objects would never finish.  ``sim_clients_per_s`` is
    simulated client-seconds delivered per wall-clock second, the
    capacity number the ROADMAP's planetary-scale goal needs.
    ``workload.committed`` is simulation-deterministic and pinned.
    """
    from repro.bench.workloads import (
        AggregateOpenLoopDriver, OpenLoopDriver, SessionClass,
    )
    from repro.harness.cluster import Cluster
    from repro.harness.config import ClusterConfig

    committed = {}

    def aggregate_once():
        cluster = Cluster(ClusterConfig(n_voters=3, seed=1)).start()
        cluster.run_until_stable(timeout=60.0)
        driver = AggregateOpenLoopDriver(cluster, [SessionClass(
            "micro", sessions=sessions, rate_per_session=rate / sessions,
            read_fraction=0.5, op_size=64,
        )]).start()
        cluster.run(duration)
        driver.stop()
        committed["aggregate"] = float(driver.committed)
        return sessions * duration

    def perclient_once():
        cluster = Cluster(ClusterConfig(n_voters=3, seed=1)).start()
        cluster.run_until_stable(timeout=60.0)
        payload = "v" * 64
        drivers = [
            OpenLoopDriver(
                cluster, rate / clients,
                lambda index, c=client: ("put", "key-%d" % c, payload),
                64,
            ).start()
            for client in range(clients)
        ]
        cluster.run(duration)
        for driver in drivers:
            driver.stop()
        return clients * duration

    aggregate_rate = _best_of(aggregate_once, repeat)
    perclient_rate = _best_of(perclient_once, repeat)
    return {
        "workload.sim_clients_per_s": aggregate_rate,
        "workload.perclient_sim_clients_per_s": perclient_rate,
        "workload.aggregate_speedup": (
            aggregate_rate / perclient_rate if perclient_rate else 0.0
        ),
        "workload.committed": committed["aggregate"],
    }


# ---------------------------------------------------------------------------
# Dissemination topologies
# ---------------------------------------------------------------------------

def bench_dissemination(ops=DISSEMINATION_OPS, n_voters=5, repeat=1,
                        topologies=None):
    """Per-topology dissemination cost through the full peer stack.

    For each propagation topology: boot an *n_voters* cluster, commit
    *ops* writes, and report wall-clock delivered messages/second plus
    the deterministic leader-egress bytes per committed transaction.
    The byte metric is the topology's signature (simulation-exact, no
    wall-clock noise), so the baseline pins it tightly; the rate metric
    rides the usual generous tolerance.
    """
    from repro.harness.cluster import Cluster
    from repro.harness.config import ClusterConfig
    from repro.zab.dissemination import DISSEMINATION_TOPOLOGIES

    if topologies is None:
        topologies = DISSEMINATION_TOPOLOGIES
    metrics = {}
    for topology in topologies:
        def run_once(topology=topology):
            cluster = Cluster(ClusterConfig(
                n_voters=n_voters, seed=1, dissemination=topology,
            )).start()
            cluster.run_until_stable(timeout=60.0)
            stats = cluster.network.stats
            leader = cluster.leader()
            base_received = sum(stats.messages_received.values())
            base_egress = stats.egress_bytes(leader.peer_id)
            done = []
            for index in range(ops):
                cluster.submit(("put", "k%d" % (index % 16), index),
                               callback=lambda r, z: done.append(None))
            cluster.run_until(lambda: len(done) >= ops, timeout=60.0)
            assert len(done) >= ops, (topology, len(done))
            metrics["dissemination.%s.leader_egress_bytes_per_txn"
                    % topology] = (
                (stats.egress_bytes(leader.peer_id) - base_egress)
                / float(ops)
            )
            return sum(stats.messages_received.values()) - base_received
        metrics["dissemination.%s.messages_per_s" % topology] = (
            _best_of(run_once, repeat)
        )
    return metrics


# ---------------------------------------------------------------------------
# Tracing overhead
# ---------------------------------------------------------------------------

def bench_tracing(ops=TRACING_OPS, n_voters=3, repeat=5):
    """Observability cost of each instrumentation posture.

    Runs the same committed-write loop through the full peer stack
    four ways -- ``off`` (bare ``NULL_TRACER``), ``recorder`` (the
    default always-on :class:`~repro.obs.FlightRecorder` black box),
    ``sampled`` (a :class:`~repro.obs.Tracer` with deterministic
    1-in-``TRACING_SAMPLE_RATE`` sampling on the per-message kinds),
    and ``full`` (record everything) -- and reports wall-clock
    committed ops/second per mode plus each mode's throughput relative
    to ``off``.  The ``sampled``/``full`` sections run ``ops // 4``
    writes: they are 2x slower per op and their ratios carry loose
    tolerances, so shorter sections keep the probe's wall time down
    without touching the gated measurement.

    The gated number is ``tracing.recorder.overhead`` =
    ``max(0, 1 - relative_throughput)``: pinned near zero in the
    baseline it enforces "the black box costs at most a few percent"
    on any runner, and clamping at zero means a lucky
    faster-than-off reading can never trip the symmetric gate.

    Because the true recorder cost is a single attribute check per hot
    event, the measurement's enemy is scheduler noise, not signal.
    Three defences keep it honest: the modes run in *interleaved*
    round-robin rounds (off, recorder, sampled, full, off, ...) so a
    slow episode lands on every mode rather than whichever one it
    happened to overlap; the GC is collected, then disabled, around
    each timed section so collection pauses don't land in one mode's
    account; and each relative_throughput is the more favourable of
    two estimators -- best-of/best-of across rounds, and the median of
    per-round (adjacent-in-time) ratios -- each of which survives the
    noise shapes that contaminate the other (a long throttle window
    spanning several rounds, respectively a burst inside one round).
    The event *counts* are simulation-deterministic and double as a
    sampling-determinism check.
    """
    from repro.harness.cluster import Cluster
    from repro.harness.config import ClusterConfig
    from repro.obs import FlightRecorder, Tracer

    counts = {}

    def run_once(mode, mode_ops):
        kwargs = {"recorder": False}
        if mode == "recorder":
            kwargs["recorder"] = FlightRecorder()
        elif mode == "sampled":
            tracer = Tracer()
            tracer.sample(
                TRACING_SAMPLE_RATE,
                "net.", "log.", "leader.", "follower.", "peer.",
            )
            kwargs["tracer"] = tracer
        elif mode == "full":
            kwargs["tracer"] = Tracer()
        cluster = Cluster(ClusterConfig(
            n_voters=n_voters, seed=1, **kwargs
        )).start()
        cluster.run_until_stable(timeout=60.0)
        done = []
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for index in range(mode_ops):
                cluster.submit(("put", "k%d" % (index % 16), index),
                               callback=lambda r, z: done.append(None))
            cluster.run_until(lambda: len(done) >= mode_ops, timeout=60.0)
            elapsed = time.perf_counter() - t0
        finally:
            gc.enable()
        assert len(done) >= mode_ops, (mode, len(done))
        if mode == "recorder":
            counts["tracing.recorder.events"] = float(
                cluster.recorder.recorded
            )
        elif mode in ("sampled", "full"):
            counts["tracing.%s.events" % mode] = float(
                len(cluster.tracer.events)
            )
        return mode_ops / elapsed if elapsed > 0 else 0.0

    mode_ops = {
        "off": ops, "recorder": ops,
        "sampled": max(1, ops // 4), "full": max(1, ops // 4),
    }
    modes = ("off", "recorder", "sampled", "full")
    best = dict.fromkeys(modes, 0.0)
    pair_ratios = {mode: [] for mode in modes[1:]}
    for _ in range(repeat):
        rates = {mode: run_once(mode, mode_ops[mode]) for mode in modes}
        for mode in modes:
            best[mode] = max(best[mode], rates[mode])
        if rates["off"] > 0:
            for mode in modes[1:]:
                pair_ratios[mode].append(rates[mode] / rates["off"])
    metrics = {"tracing.off.ops_per_s": best["off"]}
    for mode in modes[1:]:
        estimates = []
        if best["off"] > 0:
            estimates.append(best[mode] / best["off"])
        if pair_ratios[mode]:
            estimates.append(statistics.median(pair_ratios[mode]))
        ratio = max(estimates) if estimates else 0.0
        metrics["tracing.%s.ops_per_s" % mode] = best[mode]
        metrics["tracing.%s.relative_throughput" % mode] = ratio
    metrics["tracing.recorder.overhead"] = max(
        0.0, 1.0 - metrics["tracing.recorder.relative_throughput"]
    )
    metrics.update(counts)
    return metrics


# ---------------------------------------------------------------------------
# Suite
# ---------------------------------------------------------------------------

def run_micro_suite(quick=False, progress=None):
    """Run every probe; returns the flat metrics dict.

    ``quick=True`` shrinks op counts ~10x for smoke tests and CI
    runners where absolute rates do not matter.
    """
    scale = 10 if quick else 1
    probes = (
        ("kernel", lambda: bench_kernel(
            events=KERNEL_EVENTS // scale,
            repeat=1 if quick else 3,
        )),
        ("fabric", lambda: bench_fabric(
            messages=FABRIC_MESSAGES // scale,
            repeat=1 if quick else 3,
        )),
        ("checker", lambda: bench_checker(
            events=CHECKER_EVENTS // scale,
            repeat=1 if quick else 3,
        )),
        ("explore", lambda: bench_explore(
            depth=2 if quick else EXPLORE_DEPTH,
            repeat=1 if quick else 3,
        )),
        ("campaign", lambda: bench_campaign(
            seeds=2 if quick else CAMPAIGN_SEEDS,
            repeat=1 if quick else 2,
        )),
        ("parallel explore", lambda: bench_parallel_explore(
            depth=2 if quick else EXPLORE_DEPTH,
            workers=2 if quick else PARALLEL_WORKERS,
            repeat=1,
        )),
        ("workload", lambda: bench_workload(
            clients=WORKLOAD_CLIENTS // scale,
            repeat=1 if quick else 2,
        )),
        ("dissemination", lambda: bench_dissemination(
            ops=DISSEMINATION_OPS // scale,
            repeat=1,
        )),
        # Quick mode shrinks the tracing probe like the others; only
        # the full-size run (perf CI, baseline refresh) produces the
        # gated overhead ratio with its stability guarantees.
        ("tracing", lambda: bench_tracing(
            ops=TRACING_OPS // scale,
            repeat=1 if quick else 5,
        )),
    )
    metrics = {}
    for name, probe in probes:
        if progress is not None:
            progress(name)
        metrics.update(probe())
    return metrics


def write_micro_report(metrics, name="micro", path=None, params=None):
    """Emit ``BENCH_micro.json`` in the standard repro-bench/v1 schema."""
    report = make_report(name, metrics, params=params)
    return write_report(report, path or "BENCH_%s.json" % name)


def render_micro(metrics):
    """A human-readable table of the suite's rates."""
    rows = [
        ("kernel", "kernel.events_per_s", "events/s"),
        ("fabric", "fabric.messages_per_s", "messages/s"),
        ("checker (incremental)", "checker.events_per_s", "events/s"),
        ("checker (check_all)", "checker.check_all_events_per_s",
         "events/s"),
        ("explore", "explore.states_per_s", "states/s"),
        ("explore (parallel)", "explore.parallel.states_per_s",
         "states/s"),
        ("campaign", "campaign.runs_per_s", "runs/s"),
        ("workload (aggregate)", "workload.sim_clients_per_s",
         "client-s/s"),
        ("workload (per-client)", "workload.perclient_sim_clients_per_s",
         "client-s/s"),
    ]
    for key in sorted(metrics):
        prefix = "dissemination."
        if key.startswith(prefix) and key.endswith(".messages_per_s"):
            topology = key[len(prefix):-len(".messages_per_s")]
            rows.append(("dissemination (%s)" % topology, key,
                         "messages/s"))
    for mode in ("off", "recorder", "sampled", "full"):
        key = "tracing.%s.ops_per_s" % mode
        if key in metrics:
            relative = metrics.get(
                "tracing.%s.relative_throughput" % mode
            )
            unit = "ops/s" if relative is None else (
                "ops/s (%.0f%% of off)" % (relative * 100)
            )
            rows.append(("tracing (%s)" % mode, key, unit))
    lines = ["%-22s %14s %s" % ("hot path", "rate", "unit")]
    for label, key, unit in rows:
        value = metrics.get(key)
        if value is None:
            continue
        lines.append("%-22s %14s %s" % (label, "{:,.0f}".format(value),
                                        unit))
    return "\n".join(lines)
