"""The paper's evaluation, reconstructed (experiments E1-E10).

Each function runs one experiment end-to-end on the simulator and returns
``(rows, table_text, extras)`` where *rows* are structured data points,
*table_text* is the printable artifact matching the paper's table/figure,
and *extras* carries experiment-specific material (timelines, property
reports).

See DESIGN.md for the experiment index and EXPERIMENTS.md for the
recorded paper-vs-measured outcomes.
"""

from repro.app.statemachine import Txn
from repro.bench.formats import render_series, render_table
from repro.bench.runner import (
    default_op_factory,
    run_broadcast_bench,
)
from repro.bench.workloads import OpenLoopDriver
from repro.harness import Cluster, ClusterConfig, FaultSchedule
from repro.net import NetworkConfig
from repro.zab.dissemination import DISSEMINATION_TOPOLOGIES
from repro.paxos import PaxosCluster
from repro.storage import Snapshot, TxnLog
from repro.zab.sync import make_sync_plan
from repro.zab.zxid import Zxid

# Shared small-scale defaults: big enough for stable measurements, small
# enough that the whole benchmark suite finishes in minutes of wall time.
_BANDWIDTH = 25e6          # bytes/s (a 200 Mb/s link)
_OP_SIZE = 1024            # the paper's 1K operations
_DURATION = 1.0
_WARMUP = 0.3


# ---------------------------------------------------------------------------
# E1: saturated broadcast throughput vs. ensemble size
# ---------------------------------------------------------------------------

def e1_throughput_vs_servers(sizes=(3, 5, 7, 9, 11, 13), duration=_DURATION,
                             seed=1):
    """The paper's headline figure: the leader's egress NIC saturates, so
    throughput falls roughly as B/(n-1)."""
    rows = []
    for n in sizes:
        result = run_broadcast_bench(
            n, op_size=_OP_SIZE, outstanding=64, duration=duration,
            warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
        )
        ideal = _BANDWIDTH / (_OP_SIZE * (n - 1))
        rows.append({
            "servers": n,
            "throughput": result.throughput,
            "ideal_net_bound": ideal,
            "efficiency": result.throughput / ideal,
            "p50_latency_ms": result.latency["p50"] * 1000,
        })
    table = render_table(
        ["servers", "ops/s", "net-bound ops/s", "efficiency",
         "p50 (ms)"],
        [
            (row["servers"], row["throughput"], row["ideal_net_bound"],
             row["efficiency"], row["p50_latency_ms"])
            for row in rows
        ],
        title="E1: saturated 1KiB-write throughput vs. ensemble size",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E1b: throughput vs. ensemble size, per dissemination topology
# ---------------------------------------------------------------------------

def e1b_topology_scaling(sizes=(3, 5, 7, 9, 11, 13),
                         topologies=DISSEMINATION_TOPOLOGIES,
                         duration=_DURATION, seed=1):
    """The dissemination-strategy counterpart of E1: the same saturated
    1 KiB workload under each propagation topology.

    ``leader-direct`` pays (n-1) copies of every proposal out of the
    leader's NIC, so its egress bytes/txn grow linearly with the
    ensemble.  ``chain`` and ``ring`` relay hop-by-hop and keep leader
    egress flat; ``tree`` sits in between (proportional to its fan-out).
    """
    rows = []
    for topology in topologies:
        for n in sizes:
            result = run_broadcast_bench(
                n, op_size=_OP_SIZE, outstanding=64, duration=duration,
                warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
                dissemination=topology,
            )
            stats = result.net_stats
            leader_id = result.params["leader"]
            leader_bytes = stats["bytes_sent"].get(
                leader_id, max(stats["bytes_sent"].values())
            )
            committed = max(result.committed, 1)
            rows.append({
                "topology": topology,
                "servers": n,
                "throughput": result.throughput,
                "leader_egress_bytes_per_txn": leader_bytes / committed,
                "p50_latency_ms": result.latency["p50"] * 1000,
            })
    table = render_table(
        ["topology", "servers", "ops/s", "leader B/txn", "p50 (ms)"],
        [
            (row["topology"], row["servers"], row["throughput"],
             row["leader_egress_bytes_per_txn"], row["p50_latency_ms"])
            for row in rows
        ],
        title="E1b: saturated throughput vs. ensemble size, per "
              "dissemination topology",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E2: latency vs. offered load (open loop)
# ---------------------------------------------------------------------------

def e2_latency_vs_load(rates=(500, 1000, 2000, 4000, 8000, 12000),
                       n_voters=5, duration=_DURATION, seed=2):
    """Latency stays flat until the offered load hits the service
    capacity, then queues blow up — the classic knee."""
    rows = []
    for rate in rates:
        result = run_broadcast_bench(
            n_voters, op_size=_OP_SIZE, duration=duration, warmup=_WARMUP,
            seed=seed, bandwidth_bps=_BANDWIDTH, open_loop_rate=rate,
        )
        p50 = result.latency.get("p50")
        p99 = result.latency.get("p99")
        rows.append({
            "offered_rate": rate,
            "throughput": result.throughput,
            "p50_ms": p50 * 1000 if p50 is not None else None,
            "p99_ms": p99 * 1000 if p99 is not None else None,
        })
    table = render_table(
        ["offered ops/s", "achieved ops/s", "p50 (ms)", "p99 (ms)"],
        [
            (row["offered_rate"], row["throughput"], row["p50_ms"],
             row["p99_ms"])
            for row in rows
        ],
        title="E2: latency vs. offered load (n=5, 1KiB writes)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E3: throughput timeline under injected failures
# ---------------------------------------------------------------------------

def e3_failure_timeline(n_voters=5, seed=3, rate=2000):
    """Follower crash barely dents throughput; a leader crash opens a
    visible gap (election + sync) before service resumes."""
    cluster = Cluster(ClusterConfig(
        n_voters=n_voters, seed=seed,
        net=NetworkConfig(bandwidth_bps=_BANDWIDTH, latency=0.0002),
    )).start()
    cluster.run_until_stable(timeout=60)
    driver = OpenLoopDriver(
        cluster, rate, default_op_factory(_OP_SIZE), _OP_SIZE,
        warmup=0.0, timeline_bucket=0.1,
    )
    schedule = FaultSchedule(cluster)
    t0 = cluster.sim.now
    schedule.crash_follower_at(t0 + 2.0)
    schedule.recover_all_at(t0 + 4.0)
    schedule.crash_leader_at(t0 + 6.0)
    schedule.recover_all_at(t0 + 8.0)
    driver.start()
    cluster.run(10.0)
    driver.stop()
    cluster.run(0.5)

    series = driver.timeline.series(start=t0, end=t0 + 10.0)

    def window_rate(lo, hi):
        rates = [r for t, r in series if t0 + lo <= t < t0 + hi]
        return sum(rates) / len(rates) if rates else 0.0

    rows = [
        {"phase": "baseline", "window": "0-2s",
         "ops_per_s": window_rate(0.3, 2.0)},
        {"phase": "follower down", "window": "2-4s",
         "ops_per_s": window_rate(2.2, 4.0)},
        {"phase": "leader crash + re-election", "window": "6-7s",
         "ops_per_s": window_rate(6.0, 7.0)},
        {"phase": "recovered", "window": "8.5-10s",
         "ops_per_s": window_rate(8.5, 10.0)},
    ]
    table = render_table(
        ["phase", "window", "ops/s"],
        [(row["phase"], row["window"], row["ops_per_s"]) for row in rows],
        title="E3: throughput through failures (n=5, open loop)",
    )
    table += "\n" + render_series(series)
    report = cluster.check_properties()
    return rows, table, {
        "series": series,
        "events": schedule.events,
        "report": report,
    }


# ---------------------------------------------------------------------------
# E4: the Paxos primary-order counter-example, executable
# ---------------------------------------------------------------------------

def _paxos_counterexample(seed=4):
    cluster = PaxosCluster(3, seed=seed, auto_scout=False).start()
    r1, r2, r3 = (cluster.replicas[i] for i in (1, 2, 3))
    r1.start_scout()
    cluster.run(0.1)
    cluster.partition({1}, {2, 3})
    r1.submit_op(("put", "A", 1))
    r1.submit_op(("incr", "A", 1))
    cluster.run(0.2)
    r2.start_scout()
    cluster.run(0.2)
    r2.submit_op(("put", "C", 100))
    cluster.run(0.2)
    cluster.crash(2)
    cluster.heal()
    r3.start_scout()
    cluster.run(1.0)
    return cluster


def _zab_same_crash_pattern(seed=4):
    cluster = Cluster(3, seed=seed).start()
    cluster.run_until_stable(timeout=60)
    leader = cluster.leader()
    others = [
        peer_id for peer_id in cluster.config.voters
        if peer_id != leader.peer_id
    ]
    cluster.partition({leader.peer_id}, set(others))
    leader.propose_op(("put", "A", 1))
    leader.propose_op(("incr", "A", 1))
    cluster.run(0.3)
    cluster.run_until(
        lambda: cluster.leader() is not None
        and cluster.leader().peer_id != leader.peer_id,
        timeout=60,
    )
    cluster.submit_and_wait(("put", "C", 100))
    second = cluster.leader()
    cluster.crash(second.peer_id)
    cluster.heal()
    cluster.run_until(
        lambda: cluster.leader() is not None
        and cluster.leader().peer_id != second.peer_id,
        timeout=60,
    )
    cluster.run(2.0)
    return cluster


def e4_paxos_violation(seed=4):
    """Run the paper's counter-example under both protocols and diff the
    property-checker verdicts."""
    paxos = _paxos_counterexample(seed)
    paxos_report = paxos.check_properties()
    zab = _zab_same_crash_pattern(seed)
    zab_report = zab.check_properties()
    rows = [
        {
            "system": "paxos (2 outstanding)",
            "violations": sorted(paxos_report.violated_properties()),
            "final_state": paxos.states(),
        },
        {
            "system": "zab (2 outstanding)",
            "violations": sorted(zab_report.violated_properties()),
            "final_state": zab.states(),
        },
    ]
    table = render_table(
        ["system", "violated properties"],
        [
            (row["system"], ", ".join(row["violations"]) or "(none)")
            for row in rows
        ],
        title="E4: paper's multi-primary run — checker verdicts",
    )
    return rows, table, {
        "paxos_report": paxos_report,
        "zab_report": zab_report,
    }


# ---------------------------------------------------------------------------
# E5: pipelining — throughput vs. max outstanding proposals
# ---------------------------------------------------------------------------

def e5_pipelining(window_sizes=(1, 2, 4, 8, 16, 32, 64), n_voters=5,
                  duration=_DURATION, seed=5):
    """outstanding=1 is the conservative one-at-a-time sequencer; Zab's
    design point is a deep pipeline.  Throughput rises until the leader
    NIC, not the RTT, is the bottleneck."""
    rows = []
    for window in window_sizes:
        result = run_broadcast_bench(
            n_voters, op_size=_OP_SIZE, outstanding=window,
            duration=duration, warmup=_WARMUP, seed=seed,
            bandwidth_bps=_BANDWIDTH, max_outstanding=max(window, 1),
        )
        rows.append({
            "outstanding": window,
            "throughput": result.throughput,
            "p50_ms": result.latency["p50"] * 1000,
        })
    table = render_table(
        ["outstanding", "ops/s", "p50 (ms)"],
        [
            (row["outstanding"], row["throughput"], row["p50_ms"])
            for row in rows
        ],
        title="E5: pipelining (n=5, 1KiB writes)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E6: synchronisation strategy cost (DIFF vs SNAP vs TRUNC)
# ---------------------------------------------------------------------------

def _seed_txn(i):
    return Txn("t1.%d" % i, None, None, 0, ("set", "k%d" % (i % 64), i),
               _OP_SIZE)


def e6_sync_strategies(lags=(10, 200, 2000, 20000), state_size=50,
                       snap_threshold=500):
    """Plan-level cost model: bytes shipped to resynchronise a follower
    that is *lag* transactions behind a 20k-transaction history."""
    total = max(lags) + 1000
    log = TxnLog()
    for i in range(1, total + 1):
        log.append(Zxid(1, i), _seed_txn(i), size=_OP_SIZE)
    committed = Zxid(1, total)
    snapshot_bytes = state_size * _OP_SIZE  # live state ≪ full history
    provider = lambda: Snapshot(committed, ("blob", total), snapshot_bytes)
    rows = []
    for lag in lags:
        follower_last = Zxid(1, total - lag)
        plan = make_sync_plan(
            log, follower_last, committed, snap_threshold, provider
        )
        rows.append({
            "lag_txns": lag,
            "mode": plan.mode,
            "bytes_shipped": plan.payload_bytes(),
            "diff_bytes_would_be": lag * _OP_SIZE,
        })
    # TRUNC case: follower ahead by an uncommitted tail.
    ahead = Zxid(1, total + 5)
    plan = make_sync_plan(log, ahead, committed, snap_threshold, provider)
    rows.append({
        "lag_txns": -5,
        "mode": plan.mode,
        "bytes_shipped": plan.payload_bytes(),
        "diff_bytes_would_be": 0,
    })
    table = render_table(
        ["follower lag (txns)", "chosen mode", "bytes shipped",
         "full-DIFF bytes"],
        [
            (row["lag_txns"], row["mode"], row["bytes_shipped"],
             row["diff_bytes_would_be"])
            for row in rows
        ],
        title="E6: sync strategy vs. follower lag "
              "(20k-txn history, snap threshold %d)" % snap_threshold,
    )
    return rows, table, {}


def e6_end_to_end_resync(lag=5000, seed=6):
    """Wall-clock (simulated) cost of a real follower resync via DIFF vs
    via SNAP, same lag, controlled by the snap threshold.

    The workload overwrites 64 keys with 1 KiB values, so the *history*
    (lag x 1 KiB) is much larger than the *live state* (64 x 1 KiB) —
    the regime where shipping a snapshot beats replaying the diff.
    """
    rows = []
    for mode, threshold in (("DIFF", 10 ** 6), ("SNAP", 10)):
        cluster = Cluster(ClusterConfig(
            n_voters=3, seed=seed,
            net=NetworkConfig(bandwidth_bps=_BANDWIDTH),
            zab={"snap_sync_threshold": threshold,
                 "snapshot_every": 10 ** 6},
        )).start()
        cluster.run_until_stable(timeout=60)
        follower = next(
            peer for peer in cluster.peers.values()
            if peer.is_active_follower
        )
        cluster.crash(follower.peer_id)
        payload = "v" * _OP_SIZE
        committed = []
        for i in range(lag):
            cluster.submit(("put", "k%d" % (i % 64), payload),
                           callback=lambda r, z: committed.append(None))
        cluster.run_until(lambda: len(committed) == lag, timeout=60)
        before = cluster.network.stats.total_bytes()
        t0 = cluster.sim.now
        cluster.recover(follower.peer_id)
        cluster.run_until_stable(timeout=60)
        rows.append({
            "mode": mode,
            "resync_seconds": cluster.sim.now - t0,
            "sync_megabytes": (
                cluster.network.stats.total_bytes() - before
            ) / 1e6,
        })
    table = render_table(
        ["forced mode", "resync time (s)", "transfer (MB)"],
        [
            (row["mode"], row["resync_seconds"], row["sync_megabytes"])
            for row in rows
        ],
        title="E6b: end-to-end resync of a follower %d txns behind "
              "(64-key live state)" % lag,
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E7: log device configuration (paper testbed note)
# ---------------------------------------------------------------------------

def e7_log_device(n_voters=3, duration=_DURATION, seed=7):
    """The paper's testbed used dedicated log devices.  With the disk
    model enabled, a dedicated device (group commit amortising fsyncs)
    clearly beats a shared, contended one."""
    rows = []
    for label, disk, fsync in (
        ("network only (no disk)", None, 0.0),
        ("dedicated log device", "model", 0.0005),
        ("shared device (contended)", "shared", 0.0005),
        ("dedicated, slow fsync", "model", 0.005),
    ):
        result = run_broadcast_bench(
            n_voters, op_size=_OP_SIZE, outstanding=64, duration=duration,
            warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
            disk=disk, fsync_latency=fsync,
        )
        rows.append({
            "config": label,
            "throughput": result.throughput,
            "p50_ms": result.latency["p50"] * 1000,
        })
    table = render_table(
        ["log device", "ops/s", "p50 (ms)"],
        [(row["config"], row["throughput"], row["p50_ms"])
         for row in rows],
        title="E7: log-device configuration (n=3, 1KiB writes)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E8: latency percentiles by ensemble size (moderate load)
# ---------------------------------------------------------------------------

def e8_latency_percentiles(sizes=(3, 5, 7), rate=1000, duration=_DURATION,
                           seed=8):
    rows = []
    for n in sizes:
        result = run_broadcast_bench(
            n, op_size=_OP_SIZE, duration=duration, warmup=_WARMUP,
            seed=seed, bandwidth_bps=_BANDWIDTH, open_loop_rate=rate,
        )
        rows.append({
            "servers": n,
            "p50_ms": result.latency["p50"] * 1000,
            "p95_ms": result.latency["p95"] * 1000,
            "p99_ms": result.latency["p99"] * 1000,
            "mean_ms": result.latency["mean"] * 1000,
        })
    table = render_table(
        ["servers", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [
            (row["servers"], row["mean_ms"], row["p50_ms"], row["p95_ms"],
             row["p99_ms"])
            for row in rows
        ],
        title="E8: latency percentiles at %d ops/s" % rate,
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E9: group-commit ablation (disk-bound configuration)
# ---------------------------------------------------------------------------

def e9_group_commit(fsyncs=(0.0005, 0.002), n_voters=3,
                    duration=_DURATION, seed=9):
    """ZooKeeper acknowledges a proposal only after fsync, and amortises
    fsyncs across all proposals in flight (group commit).  Ablating the
    coalescing makes every append pay its own disk barrier, capping
    throughput near 1/fsync_latency regardless of the network."""
    rows = []
    for fsync in fsyncs:
        for group_commit in (True, False):
            result = run_broadcast_bench(
                n_voters, op_size=_OP_SIZE, outstanding=128,
                duration=duration, warmup=_WARMUP, seed=seed,
                bandwidth_bps=_BANDWIDTH, disk="model",
                fsync_latency=fsync, group_commit=group_commit,
                max_outstanding=128,
            )
            rows.append({
                "fsync_ms": fsync * 1000,
                "group_commit": group_commit,
                "throughput": result.throughput,
                "fsync_bound": 1.0 / fsync,
                "p50_ms": result.latency["p50"] * 1000,
            })
    table = render_table(
        ["fsync (ms)", "group commit", "ops/s", "1/fsync bound",
         "p50 (ms)"],
        [
            (row["fsync_ms"], "on" if row["group_commit"] else "off",
             row["throughput"], row["fsync_bound"], row["p50_ms"])
            for row in rows
        ],
        title="E9: group-commit ablation (n=3, 1KiB writes, disk model)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# A1 (ablation): recovery gap vs. failure-detection budget
# ---------------------------------------------------------------------------

def a1_recovery_time(ticks=(0.02, 0.05, 0.1, 0.2), n_voters=5, seed=11,
                     trials=3):
    """How long writes stall after a leader crash, as a function of the
    tick (heartbeat) period.  Detection costs ``sync_limit`` ticks, and
    election/sync add roughly constant time on top, so the gap should
    grow linearly in the tick with a positive intercept."""
    from repro.harness.scenarios import measure_recovery_gap

    rows = []
    for tick in ticks:
        gaps = []
        for trial in range(trials):
            cluster = Cluster(ClusterConfig(
                n_voters=n_voters, seed=seed + trial,
                net=NetworkConfig(bandwidth_bps=_BANDWIDTH),
                zab={"tick": tick},
            )).start()
            cluster.run_until_stable(timeout=60)
            cluster.submit_and_wait(("put", "warm", 1))
            gap, _leader = measure_recovery_gap(cluster)
            gaps.append(gap)
            report = cluster.check_properties()
            assert report.ok, report.violations[:3]
        rows.append({
            "tick_ms": tick * 1000,
            "detection_budget_ms": tick * 4 * 1000,  # sync_limit ticks
            "mean_gap_ms": sum(gaps) / len(gaps) * 1000,
            "max_gap_ms": max(gaps) * 1000,
        })
    table = render_table(
        ["tick (ms)", "detection budget (ms)", "mean gap (ms)",
         "max gap (ms)"],
        [
            (row["tick_ms"], row["detection_budget_ms"],
             row["mean_gap_ms"], row["max_gap_ms"])
            for row in rows
        ],
        title="A1: write-unavailability after leader crash vs. tick "
              "(n=5, 3 trials)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# A2 (ablation): growing the ensemble with observers vs. voters
# ---------------------------------------------------------------------------

def a2_observers(duration=_DURATION, seed=12, rate=1000):
    """ZooKeeper observers replicate the committed stream without
    voting.  At equal total replica count, an observer-heavy ensemble
    commits with a *smaller quorum*: the leader waits for fewer
    acknowledgements, so commit latency stays near the small-ensemble
    value while read capacity scales the same way."""
    configs = [
        ("3 voters", 3, 0),
        ("3 voters + 2 observers", 3, 2),
        ("3 voters + 4 observers", 3, 4),
        ("5 voters", 5, 0),
        ("7 voters", 7, 0),
    ]
    rows = []
    for label, n_voters, n_observers in configs:
        cluster = Cluster(ClusterConfig(
            n_voters=n_voters, n_observers=n_observers, seed=seed,
            net=NetworkConfig(bandwidth_bps=_BANDWIDTH),
        )).start()
        cluster.run_until_stable(timeout=60)
        driver = OpenLoopDriver(
            cluster, rate, default_op_factory(_OP_SIZE), _OP_SIZE,
            warmup=_WARMUP,
        ).start()
        cluster.run(duration + _WARMUP)
        driver.stop()
        cluster.run(0.3)
        report = cluster.check_properties()
        assert report.ok, report.violations[:3]
        summary = driver.latency.summary()
        rows.append({
            "config": label,
            "replicas": n_voters + n_observers,
            "quorum_acks": n_voters // 2 + 1,
            "p50_ms": summary["p50"] * 1000,
            "p99_ms": summary["p99"] * 1000,
        })
    table = render_table(
        ["config", "replicas", "quorum", "p50 (ms)", "p99 (ms)"],
        [
            (row["config"], row["replicas"], row["quorum_acks"],
             row["p50_ms"], row["p99_ms"])
            for row in rows
        ],
        title="A2: write latency at %d ops/s — observers vs voters" % rate,
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# A3 (ablation): throughput vs. operation size
# ---------------------------------------------------------------------------

def a3_op_size(sizes=(128, 512, 1024, 4096, 16384), n_voters=3,
               duration=_DURATION, seed=13):
    """At saturation, ops/s x bytes/op is constant: the leader's NIC
    moves a fixed byte budget regardless of how it is sliced (modulo
    per-message header overhead, which favours large operations)."""
    rows = []
    for size in sizes:
        result = run_broadcast_bench(
            n_voters, op_size=size, outstanding=64, duration=duration,
            warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
        )
        goodput = result.throughput * size
        rows.append({
            "op_bytes": size,
            "throughput": result.throughput,
            "goodput_mbps": goodput * 8 / 1e6,
            "wire_efficiency": goodput * (n_voters - 1) / _BANDWIDTH,
        })
    table = render_table(
        ["op size (B)", "ops/s", "goodput (Mb/s)", "wire efficiency"],
        [
            (row["op_bytes"], row["throughput"], row["goodput_mbps"],
             row["wire_efficiency"])
            for row in rows
        ],
        title="A3: saturated throughput vs. operation size (n=3)",
    )
    return rows, table, {}


# ---------------------------------------------------------------------------
# E10: Zab vs Paxos throughput under identical conditions
# ---------------------------------------------------------------------------

def _run_paxos_bench(n_replicas, outstanding, duration, seed):
    cluster = PaxosCluster(
        n_replicas, seed=seed,
        net_config=NetworkConfig(bandwidth_bps=_BANDWIDTH, latency=0.0002),
        max_outstanding=outstanding,
    ).start()
    leader = cluster.run_until_leader(timeout=60)
    committed = []
    payload = "v" * _OP_SIZE
    state = {"in_flight": 0}

    def pump():
        while state["in_flight"] < outstanding:
            state["in_flight"] += 1
            t0 = cluster.sim.now
            leader.submit_op(
                ("put", "key-%d" % (len(committed) % 64), payload),
                callback=lambda r, t0=t0: on_commit(t0),
                size=_OP_SIZE,
            )

    warmup_until = cluster.sim.now + _WARMUP
    samples = []

    def on_commit(t0):
        state["in_flight"] -= 1
        now = cluster.sim.now
        if now >= warmup_until:
            samples.append(now - t0)
        committed.append(None)
        pump()

    pump()
    cluster.run(duration + _WARMUP)
    report = cluster.check_properties()
    assert report.ok, report.violations[:3]
    return len(samples) / duration


def e10_zab_vs_paxos(n=3, duration=_DURATION, seed=10):
    rows = []
    zab_pipelined = run_broadcast_bench(
        n, op_size=_OP_SIZE, outstanding=64, duration=duration,
        warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
    ).throughput
    zab_single = run_broadcast_bench(
        n, op_size=_OP_SIZE, outstanding=1, duration=duration,
        warmup=_WARMUP, seed=seed, bandwidth_bps=_BANDWIDTH,
        max_outstanding=1,
    ).throughput
    paxos_single = _run_paxos_bench(n, 1, duration, seed)
    paxos_pipelined = _run_paxos_bench(n, 64, duration, seed)
    rows = [
        {"system": "zab, 64 outstanding", "throughput": zab_pipelined,
         "primary_order_safe": True},
        {"system": "paxos, 64 outstanding", "throughput": paxos_pipelined,
         "primary_order_safe": False},
        {"system": "zab, 1 outstanding", "throughput": zab_single,
         "primary_order_safe": True},
        {"system": "paxos, 1 outstanding", "throughput": paxos_single,
         "primary_order_safe": True},
    ]
    table = render_table(
        ["system", "ops/s", "PO-safe across primary changes"],
        [
            (row["system"], row["throughput"],
             "yes" if row["primary_order_safe"] else "NO (see E4)")
            for row in rows
        ],
        title="E10: Zab vs Paxos, identical network (n=3, 1KiB writes)",
    )
    return rows, table, {}
