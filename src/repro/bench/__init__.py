"""Benchmark toolkit: metrics, workload drivers, experiment runners.

Everything measures **simulated time**: throughput is committed
transactions per simulated second, latency is submit-to-commit in
simulated seconds.  Absolute values depend on the network/disk models
configured; the experiments in :mod:`repro.bench.experiments` are about
*shapes* (scaling curves, knees, dips), per EXPERIMENTS.md.
"""

from repro.bench.metrics import LatencyRecorder, Timeline, percentile
from repro.bench.runner import BenchResult, run_broadcast_bench
from repro.bench.workloads import ClosedLoopDriver, OpenLoopDriver

__all__ = [
    "LatencyRecorder",
    "Timeline",
    "percentile",
    "BenchResult",
    "run_broadcast_bench",
    "ClosedLoopDriver",
    "OpenLoopDriver",
]
