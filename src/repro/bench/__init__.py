"""Benchmark toolkit: metrics, workload drivers, experiment runners.

Everything measures **simulated time**: throughput is committed
transactions per simulated second, latency is submit-to-commit in
simulated seconds.  Absolute values depend on the network/disk models
configured; the experiments in :mod:`repro.bench.experiments` are about
*shapes* (scaling curves, knees, dips), per EXPERIMENTS.md.

The exceptions are :mod:`repro.bench.micro` (wall-clock rates of the
simulation machinery itself) and :mod:`repro.bench.parallel` (wall-clock
scale-out of campaigns and exploration across processes).
"""

from repro.bench.metrics import LatencyRecorder, Timeline, percentile
from repro.bench.parallel import parallel_explore, run_parallel_campaign
from repro.bench.runner import BenchResult, run_broadcast_bench
from repro.bench.workloads import (
    AggregateOpenLoopDriver,
    ClosedLoopDriver,
    OpenLoopDriver,
    SessionClass,
)

__all__ = [
    "LatencyRecorder",
    "Timeline",
    "percentile",
    "BenchResult",
    "run_broadcast_bench",
    "run_parallel_campaign",
    "parallel_explore",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "SessionClass",
    "AggregateOpenLoopDriver",
]
