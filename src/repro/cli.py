"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro experiment e1          # regenerate a paper artifact
    python -m repro experiment all
    python -m repro bench --servers 5      # one custom throughput run
    python -m repro trace -o trace.jsonl   # traced crash/recovery timeline
    python -m repro profile --servers 5    # commit-path stage breakdown
    python -m repro fuzz --seed 7          # random fault injection + check
    python -m repro explore --depth 8      # bounded exhaustive fault search
    python -m repro shrink --seed 7        # replay + ddmin-minimize a failure
    python -m repro info                   # inventory

The CLI is a thin veneer over :mod:`repro.bench.experiments` and
:mod:`repro.harness`; everything it prints can also be produced from the
library API.
"""

import argparse
import sys

from repro.bench import experiments
from repro.bench.runner import run_broadcast_bench
from repro.harness.opscenarios import OPS_SCENARIOS
from repro.zab.dissemination import DISSEMINATION_TOPOLOGIES

EXPERIMENTS = {
    "e1": experiments.e1_throughput_vs_servers,
    "e1b": experiments.e1b_topology_scaling,
    "e2": experiments.e2_latency_vs_load,
    "e3": experiments.e3_failure_timeline,
    "e4": experiments.e4_paxos_violation,
    "e5": experiments.e5_pipelining,
    "e6": experiments.e6_sync_strategies,
    "e6b": experiments.e6_end_to_end_resync,
    "e7": experiments.e7_log_device,
    "e8": experiments.e8_latency_percentiles,
    "e9": experiments.e9_group_commit,
    "e10": experiments.e10_zab_vs_paxos,
    "a1": experiments.a1_recovery_time,
    "a2": experiments.a2_observers,
    "a3": experiments.a3_op_size,
}


def cmd_experiment(args):
    names = list(EXPERIMENTS) if args.id == "all" else [args.id]
    for name in names:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            print("unknown experiment %r; choose from: %s"
                  % (name, ", ".join(EXPERIMENTS)), file=sys.stderr)
            return 2
        _rows, table, _extras = fn()
        print(table)
        print()
    return 0


def cmd_bench(args):
    if args.micro:
        return _cmd_bench_micro(args)
    tracer = None
    if args.json:
        # A protocol-level trace lets the report carry a health
        # summary; per-message net.* events are irrelevant to it.
        from repro import obs

        tracer = obs.Tracer()
        tracer.disable("net.")
    result = run_broadcast_bench(
        args.servers,
        op_size=args.op_size,
        outstanding=args.outstanding,
        duration=args.duration,
        seed=args.seed,
        bandwidth_bps=args.bandwidth * 1e6 / 8,
        disk="model" if args.disk else None,
        tracer=tracer,
        dissemination=args.dissemination,
    )
    print("servers:      %d" % args.servers)
    print("topology:     %s" % args.dissemination)
    print("throughput:   %.0f ops/s" % result.throughput)
    print("committed:    %d ops in %.1fs simulated"
          % (result.committed, result.duration))
    latency = result.latency
    print("latency:      p50=%.2fms p95=%.2fms p99=%.2fms"
          % (latency["p50"] * 1e3, latency["p95"] * 1e3,
             latency["p99"] * 1e3))
    print("wire traffic: %.1f MB" % (
        sum(result.net_stats["bytes_sent"].values()) / 1e6
    ))
    print("properties:   %s"
          % ("OK" if result.check_report.ok else "VIOLATED"))
    metrics = result.metrics
    hist = metrics["histograms"]["bench.commit_latency_s"]
    if hist["count"]:
        print("obs sketch:   p50=%.2fms p99=%.2fms (%d samples, ~2%% err)"
              % (hist["p50"] * 1e3, hist["p99"] * 1e3, hist["count"]))
    print("obs counters: committed=%d commits=%d elections=%d drops=%d"
          % (metrics["counters"]["bench.committed"],
             metrics["zab"]["commits"],
             metrics["zab"]["elections_decided"],
             metrics["net"]["messages_dropped"]))
    if args.json:
        from repro.bench import report as bench_report
        from repro.obs.health import HealthMonitor

        monitor = HealthMonitor()
        monitor.feed(tracer.events).finish()
        path = bench_report.write_bench_report(
            result, args.name, path=args.json, health=monitor.summary()
        )
        print("health:       %s" % monitor.summary()["verdict"])
        print("report:       %s" % path)
    return 0


def _cmd_bench_micro(args):
    """Wall-clock microbenchmarks of the simulation hot paths."""
    from repro.bench.micro import (
        render_micro, run_micro_suite, write_micro_report,
    )

    metrics = run_micro_suite(
        quick=args.quick,
        progress=lambda name: print(".. %s" % name, file=sys.stderr),
    )
    print(render_micro(metrics))
    if args.json:
        params = {"quick": args.quick}
        path = write_micro_report(metrics, path=args.json, params=params)
        print("report: %s" % path)
    return 0


def _parse_kinds(spec):
    """Split a --kinds value into patterns (exact or ``"net."``)."""
    return [kind.strip() for kind in spec.split(",") if kind.strip()]


def _kind_matches(kind, patterns):
    return any(
        kind == pattern
        or (pattern.endswith(".") and kind.startswith(pattern))
        for pattern in patterns
    )


def _cmd_trace_view(args):
    """Inspect an existing JSONL trace or flight-recorder dump."""
    from repro import obs

    try:
        events = obs.load_jsonl(args.view)
    except (OSError, ValueError, KeyError) as exc:
        print("cannot read %s: %s" % (args.view, exc), file=sys.stderr)
        return 2
    marker = None
    if events and events[-1].kind == "recorder.dump":
        marker = events[-1]
        events = events[:-1]
    if args.kinds:
        patterns = _parse_kinds(args.kinds)
        events = [
            event for event in events
            if _kind_matches(event.kind, patterns)
        ]
    if args.limit > 0:
        events = events[-args.limit:]
    if marker is not None:
        fields = marker.fields
        print("flight recorder dump: reason=%s retained=%s dropped=%s "
              "capacity=%s"
              % (fields.get("reason"), fields.get("retained"),
                 fields.get("dropped"), fields.get("capacity")))
        extra = {
            key: value for key, value in sorted(fields.items())
            if key not in ("reason", "retained", "dropped", "capacity")
        }
        if extra:
            print("  %s" % extra)
        print()
    if not events:
        print("no events%s" % (" match" if args.kinds else ""))
        return 0
    print(obs.render_summary(obs.summarize(events)))
    print()
    tail = events[-min(len(events), 20):]
    print("last %d events:" % len(tail))
    for event in tail:
        print("  t=%-10.6f node=%-4s %-22s %s"
              % (event.t, "-" if event.node is None else event.node,
                 event.kind, event.fields))
    if args.perfetto:
        obs.dump_chrome_trace(events, args.perfetto)
        print("perfetto:   %s events -> %s (open in ui.perfetto.dev)"
              % (len(events), args.perfetto))
    return 0


def cmd_trace(args):
    from repro import obs

    if args.view:
        return _cmd_trace_view(args)

    from repro.harness.scenarios import crash_recovery_timeline

    # Open the output first: a bad path should fail before the
    # scenario burns ten seconds of simulation.
    try:
        out = open(args.out, "w", encoding="utf-8")
    except OSError as exc:
        print("cannot write %s: %s" % (args.out, exc), file=sys.stderr)
        return 2
    if args.kinds:
        tracer = obs.Tracer(kinds=_parse_kinds(args.kinds))
    else:
        tracer = obs.Tracer()
        if not args.net:
            # Wire-level events dominate the file (~10 per op); keep
            # the default trace focused on the protocol timeline.
            tracer.disable("net.")
    if args.sample > 1:
        tracer.sample(
            args.sample,
            "net.", "log.", "leader.", "follower.", "peer.",
        )
    registry = obs.MetricsRegistry()
    cluster, driver, schedule = crash_recovery_timeline(
        n_voters=args.servers,
        seed=args.seed,
        rate=args.rate,
        duration=args.duration,
        tracer=tracer,
        metrics=registry,
    )
    events = tracer.events
    if args.limit > 0:
        events = events[-args.limit:]
    with out:
        count = obs.dump_jsonl(events, out)
    print(obs.render_summary(obs.summarize(events)))
    print()
    snapshot = registry.snapshot()
    print("zab:        commits=%d elections=%d leader=%s epoch=%s"
          % (snapshot["zab"]["commits"],
             snapshot["zab"]["elections_decided"],
             snapshot["zab"]["leader"], snapshot["zab"]["epoch"]))
    print("net:        sent=%d dropped=%d  drops by reason: %s"
          % (sum(snapshot["net"]["messages_sent"].values()),
             snapshot["net"]["messages_dropped"],
             snapshot["net"]["drops_by_reason"]))
    print("driver:     submitted=%d committed=%d"
          % (driver.submitted, driver.committed))
    print("trace:      %d events -> %s" % (count, args.out))
    if args.perfetto:
        obs.dump_chrome_trace(events, args.perfetto)
        print("perfetto:   %d events -> %s (open in ui.perfetto.dev)"
              % (len(events), args.perfetto))
    report = cluster.check_properties()
    print("properties: %s" % ("OK" if report.ok else "VIOLATED"))
    return 0 if report.ok else 1


def cmd_profile(args):
    from repro import obs
    from repro.bench import report as bench_report

    if args.trace:
        # Analyse an existing capture instead of running a scenario.
        try:
            events = obs.load_jsonl(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print("cannot read %s: %s" % (args.trace, exc),
                  file=sys.stderr)
            return 2
        params = {"trace": args.trace}
    else:
        from repro.harness.scenarios import crash_recovery_timeline

        tracer = obs.Tracer()
        if not args.net:
            # The span profile only needs protocol-level events; wire
            # events (~10 per op) are opt-in for the causality DAG.
            tracer.disable("net.")
        crash_recovery_timeline(
            n_voters=args.servers,
            seed=args.seed,
            rate=args.rate,
            duration=args.duration,
            tracer=tracer,
            follower_crash_at=None,
            leader_crash_at=None,
            recover_at=None,
        )
        # Round-trip through JSONL: the analysis below always runs on a
        # replayed trace, so `repro profile --trace <file>` on the dump
        # is bit-for-bit the same view.
        count = obs.dump_jsonl(tracer, args.out)
        print("trace: %d events -> %s" % (count, args.out))
        print()
        events = obs.load_jsonl(args.out)
        params = {
            "servers": args.servers,
            "seed": args.seed,
            "rate": args.rate,
            "duration": args.duration,
            "net": bool(args.net),
        }

    summary = obs.profile_trace(events, top=args.top)
    if not summary["transactions"]:
        print("no leader.propose events in the trace; nothing to profile",
              file=sys.stderr)
        return 1
    print(obs.render_profile(summary))

    graph = obs.CausalityGraph.from_events(events)
    digest = graph.summary()
    messages = digest["messages"]
    if messages["sent"]:
        print()
        print("messages:     %d sent, %d delivered, %d dropped, "
              "mean wire latency %.3fms"
              % (messages["sent"], messages["delivered"],
                 messages["dropped"],
                 (messages["mean_latency"] or 0.0) * 1e3))
        slowest = summary.get("slowest")
        if slowest:
            path = graph.critical_path(slowest[0]["zxid"])
            if path:
                print("critical path of slowest txn %d:%d:"
                      % tuple(slowest[0]["zxid"]))
                t0 = path[0][0]
                for t, node, label in path:
                    print("  +%7.3fms  node %-3s %s"
                          % ((t - t0) * 1e3, node, label))

    if args.json:
        from repro.obs.health import HealthMonitor

        monitor = HealthMonitor()
        monitor.feed(events).finish()
        path = bench_report.write_profile_report(
            summary, args.name, path=args.json, params=params,
            health=monitor.summary(),
        )
        print()
        print("health: %s" % monitor.summary()["verdict"])
        print("report: %s" % path)
    return 0


def cmd_fuzz(args):
    # Import here: the integration helpers live in the test tree's
    # spirit but are re-implemented inline to keep the CLI standalone.
    from repro.harness import Cluster

    cluster = Cluster(args.servers, seed=args.seed).start()
    cluster.run_until_stable(timeout=60)
    rng = cluster.sim.random.stream("cli-fuzz")
    max_down = (args.servers - 1) // 2

    def tick():
        leader = cluster.leader()
        if leader is not None:
            try:
                leader.propose_op(("incr", "counter", 1))
            except Exception:
                pass

    for step in range(args.steps):
        for _ in range(10):
            cluster.run(0.05)
            tick()
        crashed = [p for p, peer in cluster.peers.items() if peer.crashed]
        live = [p for p, peer in cluster.peers.items() if not peer.crashed]
        if crashed and (rng.random() < 0.5 or len(crashed) >= max_down):
            victim = rng.choice(crashed)
            print("t=%6.2f recover peer %d" % (cluster.sim.now, victim))
            cluster.recover(victim)
        else:
            victim = rng.choice(live)
            print("t=%6.2f crash   peer %d" % (cluster.sim.now, victim))
            cluster.crash(victim)
    for peer_id, peer in cluster.peers.items():
        if peer.crashed:
            cluster.recover(peer_id)
    cluster.run_until_stable(timeout=60)
    cluster.run(2.0)
    report = cluster.check_properties()
    print()
    from repro.checker.report import render_history, render_report

    print("properties: %s" % ("ALL OK" if report.ok else "VIOLATED"))
    print(render_report(report))
    if not report.ok:
        print("union history:")
        print(render_history(cluster.trace))
    return 0 if report.ok else 1


_REPRO_TEST_TEMPLATE = '''\
"""Minimized failure repro for adversary seed %(seed)d.

Auto-generated by `repro shrink`; drop into tests/corpus/ to pin the
bug.  Replays a %(n_actions)d-action schedule (shrunk from
%(original_len)d) and asserts the property violation reproduces with an
identical signature on every replay.
"""

from repro import ActionSchedule, replay_schedule
%(factory_import)s
SCHEDULE = ActionSchedule.loads(r\'\'\'
%(schedule_json)s
\'\'\')

EXPECTED_SIGNATURE = %(signature)r


def test_seed_%(seed)d_violation_reproduces():
    first = replay_schedule(SCHEDULE%(factory_kwarg)s)
    second = replay_schedule(SCHEDULE%(factory_kwarg)s)
    assert not first.passed
    assert first.signature == EXPECTED_SIGNATURE
    assert second.signature == first.signature
'''


def cmd_shrink(args):
    import os

    from repro import obs
    from repro.harness.replay import replay_schedule
    from repro.harness.schedule import ActionSchedule
    from repro.harness.shrink import make_reproducer, shrink_schedule

    leader_factory = None
    if args.buggy:
        from repro.harness.buggy import SEEDED_BUGS

        bug = SEEDED_BUGS.get(args.buggy)
        if bug is None:
            print("unknown seeded bug %r; choose from: %s"
                  % (args.buggy, ", ".join(sorted(SEEDED_BUGS))),
                  file=sys.stderr)
            return 2
        leader_factory = bug.factory

    if args.schedule:
        schedule = ActionSchedule.load(args.schedule)
        seed = schedule.meta.get("seed", args.seed)
        print("loaded %d-action schedule from %s"
              % (len(schedule), args.schedule))
    else:
        seed = args.seed
        schedule = ActionSchedule.generate(
            seed, n_voters=args.servers, steps=args.steps,
            step_interval=args.step_interval,
        )
        print("generated %d-action schedule from seed %d"
              % (len(schedule), seed))

    replay_kwargs = {"leader_factory": leader_factory}
    baseline = replay_schedule(schedule, **replay_kwargs)
    if baseline.passed:
        print("replay passed (%d deliveries); nothing to shrink"
              % baseline.deliveries)
        return 0
    print("replay FAILED: %s"
          % (baseline.error or ", ".join(baseline.violations)
             or "diverged"))
    if baseline.error is not None:
        print("stabilisation errors are not shrinkable; bailing")
        return 2

    failing = make_reproducer(baseline, mode=args.mode, **replay_kwargs)
    result = shrink_schedule(schedule, failing=failing)
    print("shrunk %d -> %d actions in %d replays"
          % (result.original_len, len(result.schedule), result.replays))
    for action in result.schedule:
        print("  t=%-6.2f %s %s"
              % (action.time, action.kind,
                 "" if action.target is None else action.target))

    # Determinism check: the minimal schedule must reproduce the same
    # violation signature (kind and zxid) on every replay.
    tracer = obs.Tracer()
    tracer.disable("net.")
    first = replay_schedule(result.schedule, tracer=tracer,
                            **replay_kwargs)
    second = replay_schedule(result.schedule, **replay_kwargs)
    if first.signature != second.signature or first.passed:
        print("WARNING: minimal schedule did not replay deterministically")
        return 2
    print("minimal repro is deterministic: %d signature entries, e.g. %s"
          % (len(first.signature), list(first.signature[:3])))

    out_dir = args.out or ("repro-seed-%s" % seed)
    os.makedirs(out_dir, exist_ok=True)
    schedule.save(os.path.join(out_dir, "schedule.json"))
    minimal_path = result.schedule.save(
        os.path.join(out_dir, "schedule.min.json")
    )
    obs.dump_jsonl(tracer, os.path.join(out_dir, "trace.jsonl"))
    test_path = os.path.join(out_dir, "test_seed_%s.py" % seed)
    with open(test_path, "w", encoding="utf-8") as f:
        f.write(_REPRO_TEST_TEMPLATE % {
            "seed": seed,
            "n_actions": len(result.schedule),
            "original_len": result.original_len,
            "schedule_json": result.schedule.dumps(indent=2),
            "signature": first.signature,
            "factory_import":
                "from repro.harness.buggy import %s\n"
                % leader_factory.__name__ if args.buggy else "",
            "factory_kwarg":
                ", leader_factory=%s" % leader_factory.__name__
                if args.buggy else "",
        })
    print("artifacts in %s/:" % out_dir)
    print("  schedule.json       original failing schedule")
    print("  schedule.min.json   minimal repro (replay: "
          "repro shrink --schedule %s)" % minimal_path)
    print("  trace.jsonl         obs trace of the minimal replay")
    print("  %s      pytest snippet for tests/corpus/"
          % os.path.basename(test_path))
    return 1


def cmd_explore(args):
    import json
    import os

    from repro.mc import ExplorerConfig, Explorer

    leader_factory = None
    if args.buggy:
        from repro.harness.buggy import SEEDED_BUGS

        bug = SEEDED_BUGS.get(args.buggy)
        if bug is None:
            print("unknown seeded bug %r; choose from: %s"
                  % (args.buggy, ", ".join(sorted(SEEDED_BUGS))),
                  file=sys.stderr)
            return 2
        leader_factory = bug.factory

    out_dir = args.out or "explore-results"
    config = ExplorerConfig(
        peers=args.peers,
        depth=args.depth,
        seed=args.seed,
        step_interval=args.step_interval,
        op_interval=args.op_interval,
        max_schedules=args.max_schedules,
        max_states=args.max_states,
        max_violations=args.max_violations,
        interleave=args.interleave,
        jitter=0.0 if args.interleave else None,
        leader_factory=leader_factory,
        dissemination=args.dissemination,
        recorder_dir=out_dir,
        ops_actions=args.ops_actions,
    )

    def progress(result):
        if result.runs and result.runs % 50 == 0:
            print("... %d runs, %d states, %d violations, frontier %d"
                  % (result.runs, result.states_visited,
                     len(result.violations), result.frontier_left),
                  file=sys.stderr)

    if args.workers is not None:
        # Partitioned subtree driver: byte-identical summary for every
        # worker count (budgets per subtree).  No --workers keeps the
        # legacy single-frontier search and its budget semantics.
        from repro.bench.parallel import parallel_explore

        result = parallel_explore(config, workers=args.workers,
                                  progress=progress)
        print("parallel: %d subtree units over %d workers"
              % (len(result.unit_results), max(1, args.workers)))
        for row in result.unit_rows():
            print("  unit %-3d prefix=%-12s %3d runs, %4d states, "
                  "%d violations, %s (worker %s, %.0f ms)"
                  % (row["unit"], row["prefix"], row["runs"],
                     row["states"], row["violations"], row["stopped"],
                     row["worker"],
                     0.0 if row["elapsed"] is None
                     else row["elapsed"] * 1e3))
    else:
        result = Explorer(config, progress=progress).run()

    print("explored %d schedules over %d distinct states "
          "(depth %d, %d peers, seed %d)"
          % (result.runs, result.states_visited, args.depth, args.peers,
             args.seed))
    print("pruning:  %d revisits skipped, %d commuting orderings skipped,"
          " %d choice points" % (result.states_pruned, result.por_skipped,
                                 result.choice_points))
    if result.exhausted:
        print("frontier: exhausted (complete to depth %d)" % args.depth)
    else:
        # Budget stops are loud, never silent: say what tripped and how
        # much of the frontier was left standing.
        print("frontier: STOPPED on %s with %d unexplored prefixes"
              % (result.stopped_reason, result.frontier_left))
    for prefix, error in result.errors:
        print("error on prefix %s: %s" % (list(prefix), error))

    if result.violations:
        os.makedirs(out_dir, exist_ok=True)
        for index, violation in enumerate(result.violations):
            path = violation.schedule.save(
                os.path.join(out_dir, "violation-%d.json" % index)
            )
            print("violation %d (%sconfirmed by replay): %s"
                  % (index, "" if violation.confirmed else "NOT ",
                     ", ".join(sorted({prop for prop, _zxid
                                       in violation.signature}))))
            for action in violation.schedule:
                print("  t=%-6.2f %s %s"
                      % (action.time, action.kind,
                         "" if action.target is None else action.target))
            print("  saved %s" % path)
            if violation.flight_path:
                print("  flight recorder: %s" % violation.flight_path)
            print("  minimize: repro shrink --schedule %s%s"
                  % (path, " --buggy %s" % args.buggy if args.buggy
                     else ""))
    else:
        print("violations: none")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(result.to_json(), f, indent=2)
            f.write("\n")
        print("summary: %s" % args.json)
    if result.errors:
        return 2
    return 1 if result.violations else 0


def cmd_campaign(args):
    from repro.bench.campaign import (
        render_campaign,
        run_adversarial_campaign,
        write_campaign_report,
    )

    seeds = range(args.first_seed, args.first_seed + args.seeds)
    outcomes = run_adversarial_campaign(
        seeds, n_voters=args.servers, steps=args.steps,
        with_health=args.health, profile=args.profile,
        workers=args.workers,
    )
    print(render_campaign(outcomes))
    if args.json:
        # The report is wall-clock- and worker-free on purpose: the
        # parallel-smoke CI job cmp's a 2-worker file against a serial
        # one byte for byte.
        write_campaign_report(outcomes, args.json, params={
            "servers": args.servers,
            "seeds": args.seeds,
            "first_seed": args.first_seed,
            "steps": args.steps,
            "profile": args.profile,
        })
        print("report: %s" % args.json)
    return 0 if all(outcome.passed for outcome in outcomes) else 1


def cmd_ops(args):
    import json

    from repro.harness.opscenarios import run_ops_scenario
    from repro.obs.health import render_health

    generate = OPS_SCENARIOS[args.scenario]
    schedule = generate(seed=args.seed, n_voters=args.servers)
    if args.save_schedule:
        schedule.save(args.save_schedule)
        print("schedule: %s" % args.save_schedule)
    result = run_ops_scenario(schedule, recorder_dir=args.recorder_dir)
    replay = result.replay
    print("scenario %s seed=%d servers=%d: %d actions fired, "
          "%d deliveries, epochs %s"
          % (args.scenario, args.seed, args.servers, len(replay.fired),
             replay.deliveries, list(replay.epochs)))
    print(render_health(result.monitor))
    if replay.error is not None:
        print("replay error: %s" % replay.error)
    if replay.violations:
        print("violations: %s" % ", ".join(replay.violations))
    if not replay.converged:
        print("replica states DIVERGED")
    if result.lost:
        print("committed-txn LOSS: %s" % result.lost[:10])
    print("verdict: %s" % ("OK" if result.passed else "FAIL"))
    if args.json:
        report = result.monitor.report(params={
            "scenario": args.scenario,
            "seed": args.seed,
            "servers": args.servers,
        })
        report["ops"] = {
            "passed": result.passed,
            "deliveries": replay.deliveries,
            "violations": list(replay.violations),
            "converged": replay.converged,
            "lost": [[peer, list(zxid)] for peer, zxid in result.lost],
            "actions_fired": len(replay.fired),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print()
        print("report: %s" % args.json)
    return 0 if result.passed else 1


def cmd_health(args):
    import json

    from repro import obs
    from repro.obs.health import (
        HealthMonitor, render_health, run_health_check,
    )

    monitor = HealthMonitor(window=args.window)
    if args.trace:
        # Offline: judge an existing JSONL capture.
        try:
            events = obs.load_jsonl(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print("cannot read %s: %s" % (args.trace, exc),
                  file=sys.stderr)
            return 2
        monitor.feed(events).finish()
        params = {"trace": args.trace, "window": args.window}
    elif args.schedule:
        # Offline: replay a declarative fault schedule, then judge
        # its trace (same monitor semantics as a live run).
        from repro.harness.replay import replay_schedule
        from repro.harness.schedule import ActionSchedule

        try:
            schedule = ActionSchedule.load(args.schedule)
        except (OSError, ValueError, KeyError) as exc:
            print("cannot load %s: %s" % (args.schedule, exc),
                  file=sys.stderr)
            return 2
        tracer = obs.Tracer()
        tracer.disable("net.")
        replay_schedule(schedule, tracer=tracer, disk="model")
        monitor.feed(tracer.events).finish()
        params = {"schedule": args.schedule, "window": args.window}
    else:
        try:
            monitor = run_health_check(
                scenario=args.scenario, servers=args.servers,
                seed=args.seed, rate=args.rate, duration=args.duration,
                window=args.window, monitor=monitor,
            )
        except Exception as exc:
            print("health check failed: %s" % exc, file=sys.stderr)
            return 2
        params = {
            "scenario": args.scenario,
            "servers": args.servers,
            "seed": args.seed,
            "rate": args.rate,
            "duration": args.duration,
            "window": args.window,
        }
    print(render_health(monitor))
    if args.json:
        report = monitor.report(params=params)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print()
        print("report: %s" % args.json)
    return 0 if monitor.healthy else 1


def cmd_info(_args):
    print(__doc__)
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zab (DSN 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser(
        "experiment", help="regenerate a paper table/figure (e1..e10, all)"
    )
    p_exp.add_argument("id")
    p_exp.set_defaults(fn=cmd_experiment)

    p_bench = sub.add_parser("bench", help="one custom throughput run")
    p_bench.add_argument("--servers", type=int, default=3)
    p_bench.add_argument("--op-size", type=int, default=1024)
    p_bench.add_argument("--outstanding", type=int, default=64)
    p_bench.add_argument("--duration", type=float, default=1.0)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--bandwidth", type=float, default=200.0,
                         help="link speed in Mbit/s (default 200)")
    p_bench.add_argument("--disk", action="store_true",
                         help="enable the fsync/disk model")
    p_bench.add_argument("--dissemination", default="leader-direct",
                         choices=list(DISSEMINATION_TOPOLOGIES),
                         help="broadcast propagation topology "
                              "(default leader-direct)")
    p_bench.add_argument("--json", default=None, metavar="PATH",
                         help="also write a BENCH_<name>.json report")
    p_bench.add_argument("--name", default="bench",
                         help="report name for --json (default bench)")
    p_bench.add_argument("--micro", action="store_true",
                         help="wall-clock hot-path microbenchmarks "
                              "(kernel/fabric/checker/explore) instead "
                              "of a simulated throughput run")
    p_bench.add_argument("--quick", action="store_true",
                         help="with --micro: ~10x smaller op counts "
                              "(smoke mode; rates are not comparable)")
    p_bench.set_defaults(fn=cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="traced crash/recovery scenario -> JSONL + phase summary",
    )
    p_trace.add_argument("--servers", type=int, default=5)
    p_trace.add_argument("--seed", type=int, default=3)
    p_trace.add_argument("--rate", type=float, default=2000.0,
                         help="open-loop offered load in ops/s")
    p_trace.add_argument("--duration", type=float, default=8.0,
                         help="simulated seconds after stability")
    p_trace.add_argument("-o", "--out", default="trace.jsonl",
                         help="JSONL output path (default trace.jsonl)")
    p_trace.add_argument("--net", action="store_true",
                         help="include wire-level net.* events (large)")
    p_trace.add_argument("--kinds", default=None, metavar="LIST",
                         help="record only these comma-separated kinds "
                              "(exact names or 'net.'-style prefixes), "
                              "e.g. 'leader.,fault.heal'; overrides "
                              "--net")
    p_trace.add_argument("--limit", type=int, default=0, metavar="N",
                         help="keep only the last N events (0 = all)")
    p_trace.add_argument("--sample", type=int, default=1, metavar="RATE",
                         help="deterministically keep ~1-in-RATE "
                              "transactions on the per-message kinds "
                              "(full span fidelity for kept ones)")
    p_trace.add_argument("--perfetto", default=None, metavar="PATH",
                         help="also export a Chrome/Perfetto trace-event "
                              "JSON file for ui.perfetto.dev")
    p_trace.add_argument("--view", default=None, metavar="FILE",
                         help="inspect an existing JSONL trace or "
                              "flight-recorder dump instead of running "
                              "the scenario (honours --kinds/--limit/"
                              "--perfetto)")
    p_trace.set_defaults(fn=cmd_trace)

    p_profile = sub.add_parser(
        "profile",
        help="per-transaction commit-path profile: stage p50/p99, "
             "quorum-wait fractions, straggler/quorum-critical followers",
    )
    p_profile.add_argument("--servers", type=int, default=5)
    p_profile.add_argument("--seed", type=int, default=3)
    p_profile.add_argument("--rate", type=float, default=800.0,
                           help="open-loop offered load in ops/s")
    p_profile.add_argument("--duration", type=float, default=3.0,
                           help="simulated seconds after stability")
    p_profile.add_argument("--trace", default=None,
                           help="profile an existing JSONL trace instead "
                                "of running a scenario")
    p_profile.add_argument("-o", "--out", default="profile.jsonl",
                           help="where to dump the scenario trace "
                                "(default profile.jsonl)")
    p_profile.add_argument("--net", action="store_true",
                           help="record wire-level net.* events too "
                                "(enables per-hop critical paths)")
    p_profile.add_argument("--top", type=int, default=5,
                           help="how many slowest transactions to list")
    p_profile.add_argument("--json", default=None, metavar="PATH",
                           help="also write a BENCH_<name>.json report")
    p_profile.add_argument("--name", default="profile",
                           help="report name for --json (default profile)")
    p_profile.set_defaults(fn=cmd_profile)

    p_fuzz = sub.add_parser(
        "fuzz", help="random crash/recover run + property check"
    )
    p_fuzz.add_argument("--servers", type=int, default=5)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--steps", type=int, default=10)
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_shrink = sub.add_parser(
        "shrink",
        help="replay a failing adversary seed and ddmin-minimize it "
             "into a repro artifact",
    )
    p_shrink.add_argument("--seed", type=int, default=0)
    p_shrink.add_argument("--servers", type=int, default=3)
    p_shrink.add_argument("--steps", type=int, default=10)
    p_shrink.add_argument("--step-interval", type=float, default=0.5)
    p_shrink.add_argument("--schedule", default=None,
                          help="shrink a schedule JSON file instead of "
                               "generating one from --seed")
    p_shrink.add_argument("--buggy", nargs="?", const="quorum_skip",
                          default=None, metavar="NAME",
                          help="inject a seeded bug from "
                               "repro.harness.buggy (bare flag means "
                               "quorum_skip, the BuggyLeader fixture)")
    p_shrink.add_argument("--mode", choices=["kinds", "any"],
                          default="kinds",
                          help="what counts as reproducing: same violated "
                               "property kinds (default) or any failure")
    p_shrink.add_argument("-o", "--out", default=None,
                          help="artifact directory "
                               "(default repro-seed-<N>)")
    p_shrink.set_defaults(fn=cmd_shrink)

    p_explore = sub.add_parser(
        "explore",
        help="bounded exhaustive model checking: every fault schedule "
             "to a depth bound, PO properties checked on each",
    )
    p_explore.add_argument("--peers", type=int, default=3)
    p_explore.add_argument("--depth", type=int, default=8,
                           help="fault decision points per execution")
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--step-interval", type=float, default=0.25)
    p_explore.add_argument("--op-interval", type=float, default=0.02,
                           help="client load period (0 disables load)")
    p_explore.add_argument("--max-schedules", type=int, default=256,
                           help="execution budget (stop is reported, "
                                "never silent)")
    p_explore.add_argument("--max-states", type=int, default=4096,
                           help="distinct-fingerprint budget")
    p_explore.add_argument("--max-violations", type=int, default=1,
                           help="stop after N distinct violations "
                                "(0 = search to the budget)")
    p_explore.add_argument("--interleave", action="store_true",
                           help="also branch over same-timestamp message "
                                "delivery orderings (implies zero jitter)")
    p_explore.add_argument("--ops-actions", action="store_true",
                           help="add operator snapshot/compaction moves "
                                "to the branching alphabet (widens state "
                                "fingerprints to cover stable storage)")
    p_explore.add_argument("--buggy", default=None, metavar="NAME",
                           help="plant a seeded bug from "
                                "repro.harness.buggy (e.g. quorum_skip)")
    p_explore.add_argument("--dissemination", default="leader-direct",
                           choices=list(DISSEMINATION_TOPOLOGIES),
                           help="broadcast propagation topology for "
                                "every explored execution")
    p_explore.add_argument("--workers", type=int, default=None,
                           metavar="N",
                           help="partition the search into root-sibling "
                                "subtrees across N processes (budgets "
                                "apply per subtree; merged summary is "
                                "byte-identical for every N)")
    p_explore.add_argument("--json", default=None, metavar="PATH",
                           help="write the JSON exploration summary here")
    p_explore.add_argument("-o", "--out", default=None,
                           help="directory for violating schedules "
                                "(default explore-results)")
    p_explore.set_defaults(fn=cmd_explore)

    p_campaign = sub.add_parser(
        "campaign",
        help="batch of adversarial runs across seeds + verdict table",
    )
    p_campaign.add_argument("--servers", type=int, default=3)
    p_campaign.add_argument("--seeds", type=int, default=10,
                            help="number of seeds (0..N-1)")
    p_campaign.add_argument("--first-seed", type=int, default=0)
    p_campaign.add_argument("--steps", type=int, default=10)
    p_campaign.add_argument("--health", action="store_true",
                            help="also run each trace through the "
                                 "health monitor (adds a verdict "
                                 "column)")
    p_campaign.add_argument("--profile", default="default",
                            choices=["default", "ops"],
                            help="adversary profile: 'ops' adds "
                                 "snapshots, compaction, one-way cuts "
                                 "and clock skew to the fault mix")
    p_campaign.add_argument("--workers", type=int, default=1,
                            metavar="N",
                            help="farm seeds across N processes "
                                 "(reports are byte-identical for "
                                 "every N)")
    p_campaign.add_argument("--json", default=None, metavar="PATH",
                            help="write the machine-readable campaign "
                                 "report (repro-campaign/v1) here")
    p_campaign.set_defaults(fn=cmd_campaign)

    p_ops = sub.add_parser(
        "ops",
        help="run one operational scenario (snapshots under load, "
             "rolling restart, flapping partition, ...) with checker, "
             "health, and loss-audit verdicts",
    )
    p_ops.add_argument("--scenario", default="rolling-restart",
                       choices=sorted(OPS_SCENARIOS),
                       help="scenario family (default rolling-restart)")
    p_ops.add_argument("--servers", type=int, default=3)
    p_ops.add_argument("--seed", type=int, default=0)
    p_ops.add_argument("--save-schedule", default=None, metavar="PATH",
                       help="also write the generated ActionSchedule "
                            "JSON here (replayable via `repro health "
                            "--schedule` or `repro shrink`)")
    p_ops.add_argument("--recorder-dir", default=None, metavar="DIR",
                       help="dump the flight recorder here on failure")
    p_ops.add_argument("--json", default=None, metavar="PATH",
                       help="write the machine-readable report here")
    p_ops.set_defaults(fn=cmd_ops)

    p_health = sub.add_parser(
        "health",
        help="cluster health over virtual time: per-node timelines, "
             "gray-failure detectors, SLO burn (exit 1 if a detector "
             "is still firing)",
    )
    p_health.add_argument("--scenario", default="crash-recovery",
                          choices=["crash-recovery", "slow-fsync"],
                          help="canned scenario to run (default "
                               "crash-recovery)")
    p_health.add_argument("--servers", type=int, default=5)
    p_health.add_argument("--seed", type=int, default=3)
    p_health.add_argument("--rate", type=float, default=2000.0,
                          help="open-loop offered load in ops/s")
    p_health.add_argument("--duration", type=float, default=8.0,
                          help="simulated seconds after stability")
    p_health.add_argument("--window", type=float, default=0.25,
                          help="detector window in virtual seconds")
    p_health.add_argument("--trace", default=None, metavar="PATH",
                          help="judge an existing JSONL trace instead "
                               "of running a scenario")
    p_health.add_argument("--schedule", default=None, metavar="PATH",
                          help="replay an ActionSchedule JSON file and "
                               "judge its trace")
    p_health.add_argument("--json", default=None, metavar="PATH",
                          help="write the machine-readable health.json "
                               "here")
    p_health.set_defaults(fn=cmd_health)

    p_info = sub.add_parser("info", help="inventory and usage")
    p_info.set_defaults(fn=cmd_info)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
