"""Zab: primary-order atomic broadcast (the paper's core contribution).

The package implements the full protocol described in the DSN'11 paper:

- :mod:`repro.zab.zxid` — (epoch, counter) transaction identifiers;
- :mod:`repro.zab.quorum` — majority / weighted / hierarchical quorums;
- :mod:`repro.zab.election` — Fast Leader Election (Phase 0 oracle);
- :mod:`repro.zab.leader` / :mod:`repro.zab.follower` — the discovery
  (Phase 1), synchronisation (Phase 2) and broadcast (Phase 3) state
  machines;
- :mod:`repro.zab.peer` — the QuorumPeer that ties them together over the
  simulated network and storage.
"""

from repro.zab.config import ZabConfig
from repro.zab.peer import PeerState, ZabPeer
from repro.zab.quorum import (
    HierarchicalQuorum,
    MajorityQuorum,
    QuorumVerifier,
    WeightedQuorum,
)
from repro.zab.zxid import Zxid, ZXID_ZERO

__all__ = [
    "ZabConfig",
    "PeerState",
    "ZabPeer",
    "QuorumVerifier",
    "MajorityQuorum",
    "WeightedQuorum",
    "HierarchicalQuorum",
    "Zxid",
    "ZXID_ZERO",
]
