"""Protocol messages.

Naming follows the paper (CEPOCH/NEWEPOCH/ACK-E/NEWLEADER/ACK-LD/COMMIT-LD,
PROPOSE/ACK/COMMIT) with the ZooKeeper learner-handshake framing
(FOLLOWERINFO, UPTODATE, DIFF/TRUNC/SNAP) for the synchronisation phase.
All classes are plain data holders; ``wire_size`` feeds the network's
bandwidth model where payload bytes matter.
"""

from repro.net.message import HEADER_BYTES

# --- Phase 0: leader election -----------------------------------------

LOOKING = "looking"
FOLLOWING = "following"
LEADING = "leading"
OBSERVING = "observing"


class Notification:
    """Fast Leader Election vote exchange."""

    __slots__ = ("leader", "zxid", "peer_epoch", "round", "sender_state")

    def __init__(self, leader, zxid, peer_epoch, round, sender_state):
        self.leader = leader
        self.zxid = zxid
        self.peer_epoch = peer_epoch
        self.round = round
        self.sender_state = sender_state

    def vote(self):
        """The (peer_epoch, zxid, leader) comparison key of this vote."""
        return (self.peer_epoch, self.zxid, self.leader)

    def __repr__(self):
        return "Notification(leader=%s %r e=%d r=%d %s)" % (
            self.leader, self.zxid, self.peer_epoch, self.round,
            self.sender_state,
        )


# --- Phase 1: discovery -------------------------------------------------


class FollowerInfo:
    """Follower -> leader: CEPOCH(f.p) plus the follower's log position."""

    __slots__ = ("accepted_epoch", "last_zxid")

    def __init__(self, accepted_epoch, last_zxid):
        self.accepted_epoch = accepted_epoch
        self.last_zxid = last_zxid


class NewEpoch:
    """Leader -> follower: NEWEPOCH(e')."""

    __slots__ = ("epoch",)

    def __init__(self, epoch):
        self.epoch = epoch


class AckEpoch:
    """Follower -> leader: ACK-E(f.a, hf) — current epoch + log position."""

    __slots__ = ("current_epoch", "last_zxid")

    def __init__(self, current_epoch, last_zxid):
        self.current_epoch = current_epoch
        self.last_zxid = last_zxid


class HistoryRequest:
    """Leader -> follower: ship me your full history (rare path taken when
    a follower's history is more recent than the prospective leader's)."""

    __slots__ = ()


class HistoryResponse:
    """Follower -> leader: full history (snapshot base + log records)."""

    __slots__ = ("current_epoch", "snapshot", "records")

    def __init__(self, current_epoch, records, snapshot=None):
        self.current_epoch = current_epoch
        self.records = records  # list of LogRecord
        self.snapshot = snapshot  # Snapshot or None (if log starts at genesis)

    def wire_size(self):
        size = HEADER_BYTES + sum(record.size for record in self.records)
        if self.snapshot is not None:
            size += self.snapshot.wire_size()
        return size


# --- Phase 2: synchronisation -------------------------------------------

SYNC_DIFF = "diff"
SYNC_TRUNC = "trunc"
SYNC_SNAP = "snap"


class SyncStart:
    """Leader -> follower: how the follower will be brought up to date."""

    __slots__ = ("mode", "trunc_zxid", "snapshot")

    def __init__(self, mode, trunc_zxid=None, snapshot=None):
        self.mode = mode
        self.trunc_zxid = trunc_zxid
        self.snapshot = snapshot

    def wire_size(self):
        size = HEADER_BYTES + 16
        if self.snapshot is not None:
            size += self.snapshot.wire_size()
        return size


class SyncTxn:
    """Leader -> follower: one committed record of the initial history."""

    __slots__ = ("zxid", "txn", "size")

    def __init__(self, zxid, txn, size):
        self.zxid = zxid
        self.txn = txn
        self.size = size

    def wire_size(self):
        return HEADER_BYTES + 8 + self.size


class NewLeader:
    """Leader -> follower: NEWLEADER(e') — end of the sync stream.

    Carries the zxid the follower's log must end at after applying the
    stream; a mismatch means the (supposedly reliable FIFO) channel
    dropped something, and the follower must abandon and re-sync.
    """

    __slots__ = ("epoch", "last_zxid")

    def __init__(self, epoch, last_zxid=None):
        self.epoch = epoch
        self.last_zxid = last_zxid


class AckNewLeader:
    """Follower -> leader: ACK-LD(e') after persisting epoch + history."""

    __slots__ = ("epoch", "last_zxid")

    def __init__(self, epoch, last_zxid):
        self.epoch = epoch
        self.last_zxid = last_zxid


class UpToDate:
    """Leader -> follower: COMMIT-LD — start serving; history is live."""

    __slots__ = ("epoch",)

    def __init__(self, epoch):
        self.epoch = epoch


# --- Phase 3: broadcast ---------------------------------------------------


class Propose:
    """Leader -> follower: two-phase-commit phase one for one txn."""

    __slots__ = ("zxid", "txn", "size")

    def __init__(self, zxid, txn, size):
        self.zxid = zxid
        self.txn = txn
        self.size = size

    def wire_size(self):
        return HEADER_BYTES + 8 + self.size

    def __repr__(self):
        return "Propose(%r, %dB)" % (self.zxid, self.size)


class Ack:
    """Follower -> leader: the proposal is durable in my log."""

    __slots__ = ("zxid",)

    def __init__(self, zxid):
        self.zxid = zxid


class Commit:
    """Leader -> follower: deliver everything up to (and incl.) zxid."""

    __slots__ = ("zxid",)

    def __init__(self, zxid):
        self.zxid = zxid


class Inform:
    """Leader -> observer: committed txn (proposal + commit in one)."""

    __slots__ = ("zxid", "txn", "size")

    def __init__(self, zxid, txn, size):
        self.zxid = zxid
        self.txn = txn
        self.size = size

    def wire_size(self):
        return HEADER_BYTES + 8 + self.size


class Relay:
    """One hop of a relayed broadcast message (non-direct topologies).

    Carries the originating leader and epoch so a receiver can tell
    stale relays (from a deposed leader's plan) from live traffic, the
    wrapped broadcast payload (PROPOSE or COMMIT), and the source route
    the receiver forwards onward — a tuple of ``(node, children)``
    pairs in the same nested shape the strategy's plan uses.  Because
    the route travels with the message, in-flight hops keep working
    even if the leader has since recomputed its plan.
    """

    __slots__ = ("origin", "epoch", "payload", "route")

    #: Routing bytes charged per downstream node named in the route.
    ROUTE_ENTRY_BYTES = 8

    def __init__(self, origin, epoch, payload, route=()):
        self.origin = origin
        self.epoch = epoch
        self.payload = payload
        self.route = route

    @property
    def zxid(self):
        """The wrapped payload's zxid (keeps fabric tracing/causality
        zxid-tagged across relay hops)."""
        return getattr(self.payload, "zxid", None)

    def _route_nodes(self):
        count = 0
        stack = list(self.route)
        while stack:
            node, children = stack.pop()
            count += 1
            stack.extend(children)
        return count

    def wire_size(self):
        inner = getattr(self.payload, "wire_size", None)
        size = inner() if inner is not None else HEADER_BYTES
        return size + 16 + self.ROUTE_ENTRY_BYTES * self._route_nodes()

    def __repr__(self):
        return "Relay(%s e=%s %r via %d)" % (
            self.origin, self.epoch, self.payload, len(self.route)
        )


# --- Heartbeats -----------------------------------------------------------


class Ping:
    """Leader -> follower heartbeat.

    Carries the commit frontier and, when digest checkpointing is on,
    the leader's latest (position, digest) checkpoint so followers can
    detect silent state divergence.
    """

    __slots__ = ("last_committed", "digest_position", "digest")

    def __init__(self, last_committed, digest_position=None, digest=None):
        self.last_committed = last_committed
        self.digest_position = digest_position
        self.digest = digest


class Pong:
    """Follower -> leader heartbeat reply."""

    __slots__ = ("last_logged",)

    def __init__(self, last_logged):
        self.last_logged = last_logged


# --- Read-path flush (ZooKeeper's sync()) -----------------------------------


class SyncRequest:
    """Follower -> leader: where is your commit frontier right now?

    ZooKeeper's ``sync()``: the leader answers (after everything
    currently outstanding commits) with the frontier zxid; once the
    follower has applied up to it, its local reads are at least as fresh
    as the moment the sync was issued.
    """

    __slots__ = ("cookie",)

    def __init__(self, cookie):
        self.cookie = cookie


class SyncReply:
    """Leader -> follower: frontier reached for this sync cookie."""

    __slots__ = ("cookie", "zxid")

    def __init__(self, cookie, zxid):
        self.cookie = cookie
        self.zxid = zxid


# --- Client traffic ---------------------------------------------------------


class ClientRequest:
    """Client -> any peer: one operation.

    ``watch=True`` on a read op registers a one-shot watch at the
    answering peer (data watch for get/exists/stat, child watch for
    children); the peer later pushes a :class:`WatchEvent`.
    """

    __slots__ = ("request_id", "client", "op", "size", "watch")

    def __init__(self, request_id, client, op, size=64, watch=False):
        self.request_id = request_id
        self.client = client
        self.op = op
        self.size = size
        self.watch = watch

    def wire_size(self):
        return HEADER_BYTES + 17 + self.size


class WatchEvent:
    """Peer -> client: a watched znode changed (one-shot)."""

    __slots__ = ("path", "event")

    def __init__(self, path, event):
        self.path = path
        self.event = event


class ForwardedRequest:
    """Follower -> leader: a write forwarded on behalf of a client."""

    __slots__ = ("request_id", "client", "origin", "op", "size")

    def __init__(self, request_id, client, origin, op, size=64):
        self.request_id = request_id
        self.client = client
        self.origin = origin  # peer id that should answer the client
        self.op = op
        self.size = size

    def wire_size(self):
        return HEADER_BYTES + 24 + self.size


class ClientReply:
    """Peer -> client: operation outcome (or a redirect hint)."""

    __slots__ = ("request_id", "ok", "result", "leader_hint", "zxid")

    def __init__(self, request_id, ok, result=None, leader_hint=None,
                 zxid=None):
        self.request_id = request_id
        self.ok = ok
        self.result = result
        self.leader_hint = leader_hint
        self.zxid = zxid
