"""Ensemble and protocol configuration.

The knobs mirror ZooKeeper's: ``tickTime`` drives heartbeats and failure
detection, ``initLimit``/``syncLimit`` bound the handshake and follower
staleness, and the pipelining/batching limits control the broadcast phase's
multiple-outstanding-transactions behaviour that the paper highlights.
"""

from repro.common.errors import ConfigError
from repro.zab.dissemination import resolve_dissemination
from repro.zab.quorum import MajorityQuorum


class ZabConfig:
    """Parameters shared by every peer of one ensemble.

    voters
        Ids of voting peers.
    observers
        Ids of non-voting peers (receive INFORM messages only).
    quorum
        A :class:`~repro.zab.quorum.QuorumVerifier`; defaults to simple
        majority over *voters*.
    tick
        Heartbeat period in (simulated) seconds.
    init_limit
        Ticks a handshake (discovery + sync) may take before giving up.
    sync_limit
        Ticks of silence after which leader/follower declare each other
        dead.
    election_finalize_wait
        Grace period after reaching quorum agreement in leader election,
        allowing a straggling better vote to arrive.
    notification_interval
        Resend period for election notifications while LOOKING.
    max_outstanding
        Maximum broadcast proposals in flight (not yet committed) at the
        leader.  1 emulates a conservative one-at-a-time sequencer; the
        paper's design point is "many".
    max_batch / batch_delay
        Client-request batching at the leader: up to *max_batch* requests
        or *batch_delay* seconds, whichever first.  A batch still maps to
        one transaction per request; batching only amortises scheduling.
    snapshot_every
        Take an application snapshot every N delivered transactions.
    snap_sync_threshold
        During sync, if a follower lags by more than this many
        transactions (or the needed records were purged), ship a snapshot
        (SNAP) instead of a diff (DIFF).
    dissemination
        Broadcast-phase propagation topology: one of
        :data:`~repro.zab.dissemination.DISSEMINATION_TOPOLOGIES`
        (``"leader-direct"``, ``"chain"``, ``"tree"``, ``"ring"``) or a
        :class:`~repro.zab.dissemination.DisseminationStrategy`
        instance.  ``leader-direct`` is the default and keeps the exact
        pre-seam fast path.
    """

    def __init__(
        self,
        voters,
        observers=(),
        quorum=None,
        tick=0.05,
        init_limit=10,
        sync_limit=4,
        election_finalize_wait=0.02,
        notification_interval=0.1,
        max_outstanding=64,
        max_batch=1,
        batch_delay=0.0,
        snapshot_every=1000,
        snap_sync_threshold=500,
        purge_logs_on_snapshot=False,
        digest_every=0,
        dissemination="leader-direct",
    ):
        voters = tuple(sorted(voters))
        observers = tuple(sorted(observers))
        if not voters:
            raise ConfigError("ensemble needs at least one voter")
        if set(voters) & set(observers):
            raise ConfigError("a peer cannot be both voter and observer")
        if tick <= 0:
            raise ConfigError("tick must be positive")
        if init_limit < 1 or sync_limit < 1:
            raise ConfigError("init_limit and sync_limit must be >= 1")
        if max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        self.voters = voters
        self.observers = observers
        self.quorum = quorum or MajorityQuorum(voters)
        if set(self.quorum.voters) != set(voters):
            raise ConfigError("quorum verifier voter set != voters")
        self.tick = tick
        self.init_limit = init_limit
        self.sync_limit = sync_limit
        self.election_finalize_wait = election_finalize_wait
        self.notification_interval = notification_interval
        self.max_outstanding = max_outstanding
        self.max_batch = max_batch
        self.batch_delay = batch_delay
        self.snapshot_every = snapshot_every
        self.snap_sync_threshold = snap_sync_threshold
        self.purge_logs_on_snapshot = purge_logs_on_snapshot
        if digest_every < 0:
            raise ConfigError("digest_every must be >= 0")
        self.digest_every = digest_every
        self.dissemination = resolve_dissemination(dissemination)

    @property
    def all_peers(self):
        """Voters plus observers."""
        return self.voters + self.observers

    def is_voter(self, peer_id):
        return peer_id in self.voters

    def handshake_timeout(self):
        """Seconds a peer waits for discovery+sync to finish."""
        return self.tick * self.init_limit

    def staleness_timeout(self):
        """Seconds of silence before declaring the peer at the other end
        of a leader/follower channel dead."""
        return self.tick * self.sync_limit
