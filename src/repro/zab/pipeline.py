"""Leader-side request pipeline: pending requests and batching.

Zab's headline performance feature is keeping **many transactions
outstanding** (Phase 3 is a pipelined two-phase commit).  The leader
additionally batches incoming requests before handing them to the
proposal path, so consecutive proposals coalesce into one log flush
(group commit) and back-to-back network sends.  ``max_batch=1`` (the
default) disables batching; experiment E9 sweeps it.
"""

import collections

from repro.obs.trace import NULL_TRACER


class PendingRequest:
    """A client write waiting to become a proposal."""

    __slots__ = ("request_id", "client", "origin", "op", "size")

    def __init__(self, request_id, client, origin, op, size):
        self.request_id = request_id
        self.client = client
        self.origin = origin
        self.op = op
        self.size = size

    def __repr__(self):
        return "PendingRequest(%s from %s)" % (self.request_id, self.origin)


class Batcher:
    """Accumulates requests and flushes them in groups.

    Flush triggers: the batch reaches *max_batch* requests, or
    *batch_delay* seconds pass since the first queued request.  A
    ``max_batch`` of 1 (or a zero delay with any batch size) flushes
    immediately and never arms a timer.
    """

    def __init__(self, peer, max_batch, batch_delay, flush_fn):
        self._peer = peer
        self._max_batch = max_batch
        self._batch_delay = batch_delay
        self._flush_fn = flush_fn
        self._buffer = []
        self._timer = None
        self._first_add_at = None

    def add(self, request):
        if not self._buffer:
            self._first_add_at = self._peer.sim.now
        self._buffer.append(request)
        if len(self._buffer) >= self._max_batch or self._batch_delay <= 0:
            self.flush()
        elif self._timer is None:
            self._timer = self._peer.set_timer(
                self._batch_delay, self._on_timer
            )

    def _on_timer(self):
        self._timer = None
        self.flush()

    def flush(self):
        """Hand everything buffered to the flush function, in order."""
        if self._timer is not None:
            self._peer.cancel_timer(self._timer)
            self._timer = None
        batch, self._buffer = self._buffer, []
        if batch:
            # getattr: unit tests drive the batcher with a bare stub
            # peer that has no tracer wired up.
            tracer = getattr(self._peer, "tracer", NULL_TRACER)
            if tracer.active:
                tracer.emit(
                    "leader.batch", node=self._peer.peer_id,
                    n=len(batch),
                    held=self._peer.sim.now - self._first_add_at,
                )
            self._first_add_at = None
            self._flush_fn(batch)

    def close(self):
        """Drop buffered requests and cancel the timer.

        Called when the leader loses leadership (or crashes): whatever
        was buffered must die with the epoch — handing it to the flush
        function here would leak requests into the next leader's term.
        """
        if self._timer is not None:
            self._peer.cancel_timer(self._timer)
            self._timer = None
        self._buffer = []
        self._first_add_at = None

    def __len__(self):
        return len(self._buffer)


class OutstandingWindow(collections.OrderedDict):
    """Ordered map zxid -> proposal with a convenience head accessor."""

    def head(self):
        """The oldest outstanding (zxid, proposal) pair, or None."""
        if not self:
            return None
        zxid = next(iter(self))
        return zxid, self[zxid]
