"""Quorum verifiers.

Zab is parameterised over a quorum system: any two quorums must intersect.
ZooKeeper ships three verifiers, all reproduced here:

- :class:`MajorityQuorum` — simple majority of the voters (the default);
- :class:`WeightedQuorum` — majority of total voter weight;
- :class:`HierarchicalQuorum` — a majority of groups, each of which must
  itself contribute a weighted majority (used for multi-datacenter
  deployments).
"""

from repro.common.errors import ConfigError
from repro.common.util import majority


class QuorumVerifier:
    """Interface: decides whether a set of voters forms a quorum."""

    @property
    def voters(self):
        """The frozenset of voting peer ids."""
        raise NotImplementedError

    def contains_quorum(self, members):
        """True if *members* (an iterable of peer ids) includes a quorum."""
        raise NotImplementedError

    def validate_intersection(self):
        """Sanity check used by tests: every two quorums must intersect.

        Exponential in the number of voters; only call on small ensembles.
        """
        voters = sorted(self.voters)
        subsets = []
        for mask in range(1 << len(voters)):
            subset = frozenset(
                voters[i] for i in range(len(voters)) if mask & (1 << i)
            )
            if self.contains_quorum(subset):
                subsets.append(subset)
        return all(a & b for a in subsets for b in subsets)


class MajorityQuorum(QuorumVerifier):
    """Simple majority of the voter set."""

    def __init__(self, voters):
        voters = frozenset(voters)
        if not voters:
            raise ConfigError("voter set must not be empty")
        self._voters = voters
        self._threshold = majority(len(voters))

    @property
    def voters(self):
        return self._voters

    @property
    def threshold(self):
        """Number of voters required."""
        return self._threshold

    def contains_quorum(self, members):
        count = sum(1 for member in members if member in self._voters)
        return count >= self._threshold

    def __repr__(self):
        return "MajorityQuorum(%d of %d)" % (
            self._threshold,
            len(self._voters),
        )


class WeightedQuorum(QuorumVerifier):
    """Strict majority of total voter weight.

    Voters with weight zero participate in the protocol but never affect
    quorum decisions (ZooKeeper allows this for tie-breaking topologies).
    """

    def __init__(self, weights):
        if not weights:
            raise ConfigError("weights must not be empty")
        for voter, weight in weights.items():
            if weight < 0:
                raise ConfigError(
                    "negative weight for %r: %r" % (voter, weight)
                )
        total = sum(weights.values())
        if total <= 0:
            raise ConfigError("total weight must be positive")
        self._weights = dict(weights)
        self._total = total

    @property
    def voters(self):
        return frozenset(self._weights)

    def contains_quorum(self, members):
        weight = sum(self._weights.get(member, 0) for member in members)
        return 2 * weight > self._total

    def __repr__(self):
        return "WeightedQuorum(total=%d)" % self._total


class HierarchicalQuorum(QuorumVerifier):
    """Majority of groups, each contributing a weighted majority.

    *groups* maps a group id to a dict of ``{voter: weight}``.  A set of
    members is a quorum iff, for a strict majority of groups, the members
    inside the group hold a strict majority of the group's weight.
    """

    def __init__(self, groups):
        if not groups:
            raise ConfigError("groups must not be empty")
        seen = set()
        for group_id, weights in groups.items():
            if not weights:
                raise ConfigError("group %r is empty" % (group_id,))
            for voter in weights:
                if voter in seen:
                    raise ConfigError(
                        "voter %r appears in multiple groups" % (voter,)
                    )
                seen.add(voter)
        self._groups = {gid: dict(w) for gid, w in groups.items()}

    @property
    def voters(self):
        return frozenset(
            voter for weights in self._groups.values() for voter in weights
        )

    def contains_quorum(self, members):
        members = set(members)
        satisfied = 0
        counted = 0
        for weights in self._groups.values():
            total = sum(weights.values())
            if total == 0:
                continue  # all-zero-weight group never counts
            counted += 1
            held = sum(
                weight
                for voter, weight in weights.items()
                if voter in members
            )
            if 2 * held > total:
                satisfied += 1
        return counted > 0 and 2 * satisfied > counted

    def __repr__(self):
        return "HierarchicalQuorum(%d groups)" % len(self._groups)
