"""Observer peers (non-voting replicas).

ZooKeeper observers scale out read capacity without growing the voting
quorum: they receive the committed stream (INFORM messages) but never
acknowledge proposals or vote in elections.  An observer locates the
current leader by probing voters with OBSERVING notifications, then runs
the same learner handshake as a follower.
"""

from repro.zab import messages
from repro.zab.zxid import ZXID_ZERO


class ObserverContext:
    """Connects an observer peer to the leader and applies INFORMs."""

    def __init__(self, peer, leader_id):
        self.peer = peer
        self.config = peer.config
        self.leader_id = leader_id
        self.active = False
        self.epoch = None
        self.horizon = None
        self._sync_records = []
        self._pending_snapshot = None
        self._saw_newleader = False
        self._handshake_timer = None
        self._watchdog_timer = None
        self._last_leader_contact = peer.sim.now

    def start(self):
        storage = self.peer.storage
        self.peer.send(
            self.leader_id,
            messages.FollowerInfo(
                storage.epochs.accepted_epoch,
                storage.log.last_durable() or ZXID_ZERO,
            ),
        )
        self._handshake_timer = self.peer.set_timer(
            self.config.handshake_timeout(), self._handshake_expired
        )

    def close(self):
        for timer in (self._handshake_timer, self._watchdog_timer):
            if timer is not None:
                self.peer.cancel_timer(timer)
        self._handshake_timer = None
        self._watchdog_timer = None

    def _handshake_expired(self):
        self._handshake_timer = None
        if not self.active:
            self.peer.go_looking("observer handshake timed out")

    # ------------------------------------------------------------------

    def on_message(self, src, msg):
        if src != self.leader_id:
            return
        self._last_leader_contact = self.peer.sim.now
        if isinstance(msg, messages.NewEpoch):
            self._on_new_epoch(msg)
        elif isinstance(msg, messages.SyncStart):
            self._sync_records = []
            self._pending_snapshot = None
            if msg.mode == messages.SYNC_TRUNC:
                self.peer.storage.log.truncate(msg.trunc_zxid)
            elif msg.mode == messages.SYNC_SNAP:
                self._pending_snapshot = msg.snapshot
        elif isinstance(msg, messages.SyncTxn):
            self._sync_records.append((msg.zxid, msg.txn, msg.size))
        elif isinstance(msg, messages.NewLeader):
            self._on_new_leader(msg)
        elif isinstance(msg, messages.UpToDate):
            self._on_up_to_date(msg)
        elif isinstance(msg, messages.Inform):
            self._on_inform(msg)
        elif isinstance(msg, messages.Ping):
            self.peer.send(
                self.leader_id,
                messages.Pong(
                    self.peer.storage.log.last_durable() or ZXID_ZERO
                ),
            )

    def _on_new_epoch(self, msg):
        epochs = self.peer.storage.epochs
        if msg.epoch < epochs.accepted_epoch:
            self.peer.go_looking("observer saw stale NEWEPOCH")
            return
        if msg.epoch > epochs.accepted_epoch:
            epochs.set_accepted_epoch(msg.epoch)
        self.peer.send(
            self.leader_id,
            messages.AckEpoch(
                epochs.current_epoch,
                self.peer.storage.log.last_durable() or ZXID_ZERO,
            ),
        )

    def _on_new_leader(self, msg):
        storage = self.peer.storage
        if self._pending_snapshot is not None:
            storage.install_snapshot(self._pending_snapshot)
        for zxid, txn, size in self._sync_records:
            last = storage.log.last_durable()
            if last is not None and zxid <= last:
                continue  # duplicate from a repeated sync stream
            storage.log.install_record(zxid, txn, size)
        self._sync_records = []
        self._pending_snapshot = None
        self.horizon = storage.log.last_durable() or ZXID_ZERO
        if msg.last_zxid is not None and self.horizon != msg.last_zxid:
            self.peer.go_looking("observer sync stream incomplete")
            return
        if msg.epoch > storage.epochs.current_epoch:
            storage.epochs.set_current_epoch(msg.epoch)
        self.epoch = msg.epoch
        self._saw_newleader = True
        self.peer.send(
            self.leader_id, messages.AckNewLeader(msg.epoch, self.horizon)
        )

    def _on_up_to_date(self, msg):
        if not self._saw_newleader or msg.epoch != self.epoch:
            return
        if self._handshake_timer is not None:
            self.peer.cancel_timer(self._handshake_timer)
            self._handshake_timer = None
        self.active = True
        self.peer.rebuild_state(upto=self.horizon)
        self._arm_watchdog()
        self.peer.on_follower_active()

    def _on_inform(self, msg):
        if not self.active:
            return
        last = self.peer.storage.log.last_appended()
        if last is not None and msg.zxid <= last:
            return  # duplicate
        from repro.zab.follower import _contiguous

        if not _contiguous(last, msg.zxid):
            # A committed transaction went missing in flight; re-sync
            # rather than deliver past the hole.
            self.peer.go_looking(
                "inform gap: got %r after %r" % (msg.zxid, last)
            )
            return
        # INFORM carries a committed transaction: log and deliver at once.
        self.peer.storage.log.install_record(msg.zxid, msg.txn, msg.size)
        self.peer.commit_local(msg.zxid, msg.txn)

    def _arm_watchdog(self):
        self._watchdog_timer = self.peer.set_timer(
            self.config.tick, self._check_leader_alive
        )

    def _check_leader_alive(self):
        self._watchdog_timer = None
        silence = self.peer.sim.now - self._last_leader_contact
        if silence > self.config.staleness_timeout():
            self.peer.go_looking("observer lost leader")
            return
        self._arm_watchdog()

    def forward_request(self, request):
        """Observers also relay client writes to the leader."""
        self.peer.send(
            self.leader_id,
            messages.ForwardedRequest(
                request.request_id,
                request.client,
                request.origin,
                request.op,
                request.size,
            ),
        )
