"""Transaction identifiers.

A zxid is the pair ``(epoch, counter)``: *epoch* identifies the primary
instance that generated the transaction and *counter* its position within
that instance.  zxids are totally ordered lexicographically, which is the
order Zab delivers in.  ZooKeeper packs the pair into a 64-bit integer
(epoch in the high 32 bits); :meth:`Zxid.packed` mirrors that encoding.
"""

import functools


@functools.total_ordering
class Zxid:
    """An (epoch, counter) transaction id."""

    __slots__ = ("epoch", "counter")

    def __init__(self, epoch, counter):
        if epoch < 0 or counter < 0:
            raise ValueError("zxid parts must be non-negative")
        self.epoch = epoch
        self.counter = counter

    def next(self):
        """The next zxid of the same primary instance."""
        return Zxid(self.epoch, self.counter + 1)

    def packed(self):
        """64-bit packed form: epoch << 32 | counter."""
        return (self.epoch << 32) | self.counter

    @classmethod
    def unpack(cls, value):
        """Inverse of :meth:`packed`."""
        return cls(value >> 32, value & 0xFFFFFFFF)

    def as_tuple(self):
        return (self.epoch, self.counter)

    def __eq__(self, other):
        if not isinstance(other, Zxid):
            return NotImplemented
        return self.epoch == other.epoch and self.counter == other.counter

    def __lt__(self, other):
        if not isinstance(other, Zxid):
            return NotImplemented
        return (self.epoch, self.counter) < (other.epoch, other.counter)

    def __hash__(self):
        return hash((self.epoch, self.counter))

    def __repr__(self):
        return "zxid(%d:%d)" % (self.epoch, self.counter)

    def wire_size(self):
        return 8


#: The zxid of "no transaction yet": sorts before every real zxid.
ZXID_ZERO = Zxid(0, 0)


def max_zxid(a, b):
    """Maximum of two zxids, treating None as minus infinity."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b
