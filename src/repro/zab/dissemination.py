"""Pluggable broadcast dissemination topologies.

The paper's evaluation shows saturated broadcast throughput falling as
``B / (n - 1)``: the leader streams every PROPOSAL (and COMMIT) to every
follower directly, so its egress NIC is the bottleneck.  Ring Paxos and
chain replication attack exactly this by making *followers* relay the
stream onward, trading leader egress bandwidth for per-hop latency.

A :class:`DisseminationStrategy` answers three questions for the
broadcast phase:

- who does the **leader** send a PROPOSAL/COMMIT to (the roots of the
  plan);
- who **relays** it onward (the children below each root — carried as a
  source route inside :class:`~repro.zab.messages.Relay` so in-flight
  messages never depend on the leader's *current* plan);
- where do **ACKs** flow back (:meth:`ack_destination` — the leader for
  every built-in strategy, so quorum accounting is unchanged).

Four implementations ship:

``leader-direct``
    Today's behaviour and the default: the leader fans out to every
    follower itself.  This path is bit-identical to the pre-seam code.
``chain``
    Chain-replication style: one path through the followers in
    ascending id order; leader egress is one proposal per transaction
    regardless of ensemble size.
``tree``
    Balanced fan-out tree (binary by default): leader egress is
    proportional to the fan-out, depth is logarithmic.
``ring``
    Ring dissemination (Ring Paxos): the chain starts at the leader's
    successor in id order and wraps around, so the relay order is a
    rotation of the ring rather than a fixed sorted chain.

Only the *propagation* topology changes.  Agreement is untouched: ACKs
still flow straight back to the leader, quorum and commit order are
computed exactly as before, and the PO broadcast properties are checked
unchanged (the topology-equivalence suite pins this).
"""

from repro.common.errors import ConfigError

#: The four built-in topology names, in documentation order.
DISSEMINATION_TOPOLOGIES = ("leader-direct", "chain", "tree", "ring")


class DisseminationStrategy:
    """How broadcast-phase traffic propagates from the leader.

    Subclasses override :meth:`plan`.  ``name`` is the registry key;
    ``direct`` marks the strategy as "leader sends to everyone itself",
    which lets the leader keep the exact pre-seam fast path (no plan
    computation, no Relay wrapping) when it is set.
    """

    name = None
    direct = False

    def plan(self, leader_id, members):
        """The relay forest for *members* (sorted follower ids).

        Returns a tuple of ``(node, children)`` pairs — the leader's
        immediate targets — where ``children`` is recursively the same
        shape (the source route that node forwards onward).  The forest
        must span *members* exactly once; *leader_id* is not a member
        but may influence the shape (see ``ring``).
        """
        raise NotImplementedError

    def ack_destination(self, leader_id, member_id):
        """Where *member_id* sends its proposal ACKs.

        Every built-in strategy returns *leader_id*: ACKs flow straight
        back so quorum accounting is identical across topologies.  The
        method exists as the seam for future aggregating topologies
        (e.g. ACK-combining trees).
        """
        return leader_id

    def __repr__(self):
        return "<%s %r>" % (type(self).__name__, self.name)


def _path(members):
    """A single relay path visiting *members* in order, as a forest."""
    forest = ()
    for node in reversed(members):
        forest = ((node, forest),)
    return forest


class LeaderDirectStrategy(DisseminationStrategy):
    """The paper's baseline: the leader streams to every follower."""

    name = "leader-direct"
    direct = True

    def plan(self, leader_id, members):
        return tuple((node, ()) for node in members)


class ChainStrategy(DisseminationStrategy):
    """One relay chain through the followers in ascending id order."""

    name = "chain"

    def plan(self, leader_id, members):
        return _path(tuple(members))


class RingStrategy(DisseminationStrategy):
    """Chain rotated to start at the leader's successor on the id ring."""

    name = "ring"

    def plan(self, leader_id, members):
        members = tuple(members)
        pivot = 0
        for index, node in enumerate(members):
            if node > leader_id:
                pivot = index
                break
        return _path(members[pivot:] + members[:pivot])


class TreeStrategy(DisseminationStrategy):
    """Balanced fan-out tree over the followers in ascending id order.

    Members are laid out heap-style: the leader feeds the first
    ``fanout`` members; the member at index ``i`` feeds indices
    ``fanout*(i+1) .. fanout*(i+1)+fanout-1``.  Leader egress per
    transaction is proportional to the fan-out, depth to ``log n``.
    """

    name = "tree"

    def __init__(self, fanout=2):
        if fanout < 1:
            raise ConfigError("tree fanout must be >= 1")
        self.fanout = fanout

    def plan(self, leader_id, members):
        members = tuple(members)
        fanout = self.fanout

        def subtree(index):
            first = fanout * (index + 1)
            children = tuple(
                subtree(child)
                for child in range(first, min(first + fanout, len(members)))
            )
            return (members[index], children)

        return tuple(
            subtree(index) for index in range(min(fanout, len(members)))
        )


_REGISTRY = {
    "leader-direct": LeaderDirectStrategy,
    "chain": ChainStrategy,
    "tree": TreeStrategy,
    "ring": RingStrategy,
}


def resolve_dissemination(spec):
    """Normalise *spec* (a topology name or a strategy instance)."""
    if isinstance(spec, DisseminationStrategy):
        return spec
    factory = _REGISTRY.get(spec)
    if factory is None:
        raise ConfigError(
            "unknown dissemination topology %r (expected one of %s, or a "
            "DisseminationStrategy instance)"
            % (spec, ", ".join(DISSEMINATION_TOPOLOGIES))
        )
    return factory()


def plan_members(plan):
    """Every node covered by a relay *plan*, in visit order."""
    out = []
    stack = list(reversed(plan))
    while stack:
        node, children = stack.pop()
        out.append(node)
        stack.extend(reversed(children))
    return out
