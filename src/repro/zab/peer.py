"""The QuorumPeer: one replicated-service process.

A :class:`ZabPeer` glues together stable storage, the leader-election
oracle, and the per-role protocol contexts.  It owns the volatile
delivered state (the application state machine, the commit frontier, the
delivery position counter) and the crash/recovery lifecycle: crashing
loses everything volatile; stable storage (epochs, log, snapshots)
survives and the peer rejoins via election on recovery.
"""

from repro.app.watches import WatchManager
from repro.common.errors import NotLeaderError
from repro.obs.trace import NULL_TRACER
from repro.sim.process import Process
from repro.storage import EpochStore, Snapshot, SnapshotStore, TxnLog
from repro.zab import messages
from repro.zab.election import FastLeaderElection
from repro.zab.follower import FollowerContext
from repro.zab.leader import LeaderContext
from repro.zab.observer import ObserverContext
from repro.zab.pipeline import PendingRequest
from repro.zab.zxid import ZXID_ZERO


class PeerState:
    """Peer role constants (mirrors :mod:`repro.zab.messages`)."""

    LOOKING = messages.LOOKING
    FOLLOWING = messages.FOLLOWING
    LEADING = messages.LEADING
    OBSERVING = messages.OBSERVING


class PeerStorage:
    """The stable-storage bundle of one peer; survives crashes.

    Pass pre-built components (e.g. the file-backed variants from
    :mod:`repro.storage.persist`) to override the in-memory defaults.
    """

    def __init__(self, disk=None, group_commit=True, epochs=None,
                 log=None, snapshots=None):
        self.epochs = epochs if epochs is not None else EpochStore()
        self.log = (
            log if log is not None
            else TxnLog(disk, group_commit=group_commit)
        )
        self.snapshots = (
            snapshots if snapshots is not None else SnapshotStore()
        )

    def crash(self):
        """Lose in-flight (not yet fsynced) log appends."""
        self.log.crash()

    def install_snapshot(self, snapshot):
        """Adopt a snapshot shipped by the leader (SNAP sync)."""
        self.snapshots.save(
            snapshot.last_zxid, snapshot.state, snapshot.size
        )
        self.log.reset_to_snapshot(snapshot.last_zxid)


class ZabPeer(Process):
    """One member of the ensemble.

    Parameters
    ----------
    sim, network:
        The shared simulation kernel and fabric.
    peer_id:
        This peer's id; must appear in ``config.voters`` or
        ``config.observers``.
    config:
        The ensemble's :class:`~repro.zab.config.ZabConfig`.
    app_factory:
        Zero-argument callable building a fresh
        :class:`~repro.app.statemachine.StateMachine`.
    storage:
        Optional pre-existing :class:`PeerStorage` (reused across
        simulated restarts by the harness).
    trace:
        Optional :class:`~repro.checker.trace.Trace` recording broadcast
        and delivery events for property checking.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` receiving structured
        observability events (state transitions, commits, sync choices);
        defaults to the no-op tracer.
    leader_factory:
        Callable building the leader-side context when this peer wins an
        election; defaults to :class:`~repro.zab.leader.LeaderContext`.
        Fault-injection tests swap in deliberately broken variants (see
        :mod:`repro.harness.buggy`).
    """

    def __init__(self, sim, network, peer_id, config, app_factory,
                 storage=None, trace=None, tracer=None,
                 leader_factory=None):
        Process.__init__(self, sim, "peer-%d" % peer_id)
        self.network = network
        self.peer_id = peer_id
        self.config = config
        self.app_factory = app_factory
        self.storage = storage or PeerStorage()
        self.trace = trace
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # The txn log emits its own log.append/log.durable events so the
        # span profiler can split fsync time out of the commit path.
        self.storage.log.bind_tracer(self.tracer, peer_id)
        self.leader_factory = leader_factory or LeaderContext
        self.is_observer = peer_id in config.observers
        self.rng = sim.random.stream("peer-%d" % peer_id)
        self.clock_skew = 1.0        # multiplier on election timers
        self.election = FastLeaderElection(self)

        self.state = None            # not started yet
        self.leader_id = None
        self.ctx = None
        self.sm = None               # delivered application state
        self.position = 0            # global delivery index
        self.last_committed = None   # zxid frontier of self.sm
        self.incarnation = 0
        self.delivered_count = 0
        self.elections_decided = 0
        self.times_led = 0
        self.role_changes = []       # (time, state) transitions, for tests
        self._last_snapshot_position = 0
        self._local_callbacks = {}
        self._local_seq = 0
        self._probe_timer = None
        self._digests = {}           # checkpoint position -> digest
        self.divergences = []        # (time, position, ours, leaders)
        # Server-side client watches; registrations survive state
        # rebuilds (the manager re-attaches to each fresh SM).
        self.watch_manager = WatchManager()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Boot the peer (register on the network, begin election)."""
        self.incarnation += 1
        self.network.register(self.peer_id, self._on_message)
        self.sm = None
        self.position = 0
        self.last_committed = None
        self._local_callbacks = {}
        if self.is_observer:
            self._enter_observing()
        else:
            self.go_looking("boot")

    def on_crash(self):
        self.storage.crash()
        self.network.set_alive(self.peer_id, False)
        self.election.stop()
        self._close_ctx()
        self._set_state(None)
        self.sm = None
        self.leader_id = None
        self._local_callbacks = {}

    def on_recover(self):
        self.start()

    def election_timer(self, delay, fn):
        """``set_timer`` for election machinery, scaled by clock skew.

        A skewed node's election timeouts stretch (skew > 1) or shrink
        (skew < 1) relative to its peers — the classic misconfigured-
        clock scenario.  The default skew of 1.0 multiplies exactly in
        IEEE floats, so unskewed runs stay bit-identical to before the
        knob existed.
        """
        return self.set_timer(delay * self.clock_skew, fn)

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------

    def _set_state(self, state):
        self.state = state
        self.role_changes.append((self.sim.now, state))
        self.tracer.emit("peer.state", node=self.peer_id, state=state)

    def _close_ctx(self):
        if self.ctx is not None:
            self.ctx.close()
            self.ctx = None
        if self._probe_timer is not None:
            self.cancel_timer(self._probe_timer)
            self._probe_timer = None

    def go_looking(self, reason):
        """Abandon the current role and re-enter leader election.

        Role changes get TCP-reset semantics: in-flight appends that
        were never acknowledged are dropped, and re-registering on the
        network bumps our incarnation so messages already in flight
        from the previous role (old proposals, old sync streams) are
        discarded instead of leaking into the new handshake.
        """
        if self.crashed:
            return
        self._close_ctx()
        self.storage.log.abort_pending()
        self.network.register(self.peer_id, self._on_message)
        self.leader_id = None
        self.sm = None
        self.last_looking_reason = reason
        self.tracer.emit("peer.looking", node=self.peer_id, reason=reason)
        if self.is_observer:
            self._enter_observing()
            return
        self._set_state(messages.LOOKING)
        self.election.start()

    def on_election_decided(self, leader):
        """Callback from FLE once a leader has been chosen."""
        self.leader_id = leader
        self.elections_decided += 1
        if leader == self.peer_id:
            self.times_led += 1
            self._set_state(messages.LEADING)
            self.ctx = self.leader_factory(self)
        else:
            self._set_state(messages.FOLLOWING)
            self.ctx = FollowerContext(self, leader)
        self.ctx.start()

    def _enter_observing(self):
        self._set_state(messages.OBSERVING)
        self._arm_probe()

    def _arm_probe(self):
        """Observers probe voters until one answers with a leader."""
        epoch, zxid = self.vote_basis()
        note = messages.Notification(
            leader=self.peer_id,
            zxid=zxid,
            peer_epoch=epoch,
            round=0,
            sender_state=messages.OBSERVING,
        )
        for voter in self.config.voters:
            self.send(voter, note)
        self._probe_timer = self.set_timer(
            self.config.notification_interval, self._arm_probe
        )

    def on_follower_active(self):
        """Hook fired when this peer finishes syncing (tests observe it)."""

    # ------------------------------------------------------------------
    # Election support
    # ------------------------------------------------------------------

    def vote_basis(self):
        """(currentEpoch, lastZxid) — the FLE vote comparison basis."""
        return (
            self.storage.epochs.current_epoch,
            self.storage.log.last_durable() or ZXID_ZERO,
        )

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, dst, msg):
        self.network.send(self.peer_id, dst, msg)

    def _on_message(self, src, msg):
        if self.crashed or self.state is None:
            return
        if isinstance(msg, messages.Notification):
            self._on_notification(src, msg)
        elif isinstance(msg, messages.ClientRequest):
            self._on_client_request(src, msg)
        elif self.ctx is not None:
            self.ctx.on_message(src, msg)

    def _on_notification(self, src, note):
        if self.state == messages.OBSERVING:
            if (
                self.ctx is None
                and note.sender_state == messages.LEADING
                and note.leader == src
            ):
                if self._probe_timer is not None:
                    self.cancel_timer(self._probe_timer)
                    self._probe_timer = None
                self.leader_id = src
                self.ctx = ObserverContext(self, src)
                self.ctx.start()
            return
        self.election.on_notification(src, note)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def _on_client_request(self, src, msg):
        if self.sm is not None and self.sm.is_read(msg.op):
            result = self.sm.read(msg.op)
            if msg.watch:
                self._register_client_watch(src, msg.op)
            self.send(
                src,
                messages.ClientReply(
                    msg.request_id, True, result=result,
                    zxid=self.last_committed,
                ),
            )
            return
        request = PendingRequest(
            msg.request_id, msg.client, self.peer_id, msg.op, msg.size
        )
        if self.state == messages.LEADING:
            self.ctx.submit(request)
        elif (
            self.state in (messages.FOLLOWING, messages.OBSERVING)
            and self.ctx is not None
            and self.ctx.active
        ):
            self.ctx.forward_request(request)
        else:
            self.send(
                src,
                messages.ClientReply(
                    msg.request_id, False, leader_hint=self.leader_id
                ),
            )

    def _register_client_watch(self, client, op):
        """One-shot watch at this peer, pushed to *client* when it fires.

        Only meaningful for path-based reads on a tree state machine
        (the op's second element is the path); other reads ignore the
        flag, like ZooKeeper ignores watches on unsupported calls.
        """
        if len(op) < 2 or not isinstance(op[1], str):
            return
        path = op[1]
        if not path.startswith("/"):
            return  # not a tree path (e.g. a KV key): no watch support

        def push(event, fired_path):
            if not self.crashed:
                self.send(
                    client, messages.WatchEvent(fired_path, event)
                )

        if op[0] == "children":
            self.watch_manager.watch_children(path, push)
        else:
            self.watch_manager.watch_data(path, push)

    def propose_op(self, op, callback=None, size=None):
        """Inject a write directly at this peer (benchmark fast path).

        Only valid on an established leader; *callback(result, zxid)* runs
        when the transaction commits locally.
        """
        if self.state != messages.LEADING or not self.ctx.established:
            raise NotLeaderError("%s is not an established leader" % self.name)
        self._local_seq += 1
        request_id = "local-%d-%d" % (self.peer_id, self._local_seq)
        if callback is not None:
            self._local_callbacks[request_id] = callback
        if size is None:
            size = self.sm.op_size(op) if self.sm else 64
        self.ctx.submit(
            PendingRequest(request_id, None, self.peer_id, op, size)
        )
        return request_id

    def sync_read(self, query, callback):
        """Serve *query* at least as fresh as the leader's current commit
        frontier (ZooKeeper's ``sync()`` + read idiom).

        On the leader this waits for the outstanding pipeline to drain;
        on a follower it round-trips a sync barrier to the leader first.
        *callback(result)* may fire with ``("error", ...)`` if the peer
        cannot complete the sync (not serving, leader lost).
        """
        if self.state == messages.LEADING and self.ctx.established:
            self.ctx.sync_barrier(
                lambda _frontier: callback(self.sm.read(query))
            )
        elif self.state == messages.FOLLOWING and self.ctx.active:
            self.ctx.sync_read(query, callback)
        else:
            callback(("error", "not-serving"))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def commit_local(self, zxid, txn):
        """Apply one committed transaction and answer its originator."""
        result = self.sm.apply(txn.body)
        self.position += 1
        self.delivered_count += 1
        self.last_committed = zxid
        tracer = self.tracer
        if tracer.active:
            tracer.emit(
                "peer.commit", node=self.peer_id,
                zxid=zxid.as_tuple(), txn=txn.txn_id,
            )
        if self.trace is not None:
            self.trace.record_delivery(
                self.peer_id, self.incarnation, self.position, zxid,
                txn.txn_id,
            )
        self._maybe_snapshot()
        self._maybe_digest()
        if txn.origin == self.peer_id:
            self._answer(txn, result, zxid)
        return result

    def _maybe_digest(self):
        every = self.config.digest_every
        if not every or self.position % every:
            return
        self._digests[self.position] = self.sm.digest()
        # Keep the table bounded.
        while len(self._digests) > 16:
            del self._digests[min(self._digests)]

    def latest_digest(self):
        """(position, digest) of the newest checkpoint, or (None, None)."""
        if not self._digests:
            return None, None
        position = max(self._digests)
        return position, self._digests[position]

    def check_digest(self, position, digest):
        """Compare a leader checkpoint against our own; record mismatch."""
        ours = self._digests.get(position)
        if ours is not None and ours != digest:
            self.divergences.append(
                (self.sim.now, position, ours, digest)
            )
            return False
        return True

    def _answer(self, txn, result, zxid):
        if txn.client is None:
            callback = self._local_callbacks.pop(txn.request_id, None)
            if callback is not None:
                callback(result, zxid)
        else:
            self.send(
                txn.client,
                messages.ClientReply(
                    txn.request_id, True, result=result, zxid=zxid
                ),
            )

    def _maybe_snapshot(self):
        due = self.position - self._last_snapshot_position
        if due < self.config.snapshot_every:
            return
        self._snapshot(purge=self.config.purge_logs_on_snapshot)

    def take_snapshot(self):
        """Operator-initiated fuzzy snapshot (the ``snapshot`` action).

        Serialises the application state at the current delivery
        frontier and saves it.  Unlike the periodic path this never
        purges the log — compaction is a separate, explicit
        ``compact_log`` action driven by the retention policy
        (:mod:`repro.storage.retention`).  Returns the saved
        :class:`~repro.storage.snapshot.Snapshot`, or None when there
        is nothing to snapshot (crashed, still syncing, or nothing
        delivered yet).
        """
        if self.crashed or self.sm is None or self.last_committed is None:
            return None
        return self._snapshot(purge=False)

    def _snapshot(self, purge):
        blob, nbytes = self.sm.serialize()
        snapshot = self.storage.snapshots.save(
            self.last_committed, (blob, self.position), nbytes
        )
        self._last_snapshot_position = self.position
        # Unguarded: snapshots are rare control-plane events that must
        # land in the flight recorder even with tracing off.
        self.tracer.emit(
            "snapshot.save", node=self.peer_id,
            zxid=self.last_committed.as_tuple(),
            position=self.position, size=nbytes,
        )
        if purge:
            self.storage.log.purge_through(self.last_committed)
        return snapshot

    # ------------------------------------------------------------------
    # State (re)construction
    # ------------------------------------------------------------------

    def _replay(self, upto, digests=None):
        """Build (sm, position, frontier) from snapshot + log up to *upto*.

        When *digests* is a dict, checkpoint digests are recomputed at
        the configured interval during the replay (so divergence
        checking keeps working after a resync).
        """
        sm = self.app_factory()
        position = 0
        base = None
        store = self.storage.snapshots
        snapshot = (
            store.latest() if upto is None else store.latest_at_or_before(upto)
        )
        if snapshot is not None:
            blob, position = snapshot.state
            sm.restore(blob)
            base = snapshot.last_zxid
        frontier = base
        applied = []
        every = self.config.digest_every
        for record in self.storage.log.entries_after(base):
            if upto is not None and record.zxid > upto:
                break
            sm.apply(record.txn.body)
            position += 1
            frontier = record.zxid
            applied.append((position, record))
            if digests is not None and every and position % every == 0:
                digests[position] = sm.digest()
        return sm, position, frontier, applied

    def rebuild_state(self, upto=None):
        """Reset the delivered state to the history prefix <= *upto*.

        Each rebuild starts a new delivery *incarnation* in the trace: the
        state machine restarts from a snapshot/replay base, so its
        position sequence begins anew (the checker aligns incarnations by
        absolute position).
        """
        self.incarnation += 1
        self._digests = {}
        sm, position, frontier, applied = self._replay(
            upto, digests=self._digests
        )
        self.sm = sm
        self.position = position
        self.last_committed = frontier or ZXID_ZERO
        self._last_snapshot_position = position
        while len(self._digests) > 16:
            del self._digests[min(self._digests)]
        # Re-attach client watches AFTER the replay so reconstructing
        # old history does not fire spurious events (ZooKeeper watches
        # fire only for changes observed live).
        if hasattr(sm, "listener"):
            self.watch_manager.attach(sm)
        self.delivered_count += len(applied)
        if self.trace is not None:
            for pos, record in applied:
                self.trace.record_delivery(
                    self.peer_id, self.incarnation, pos, record.zxid,
                    record.txn.txn_id,
                )

    def build_snapshot(self, upto):
        """Serialise the history prefix <= *upto* (SNAP sync provider)."""
        sm, position, frontier, _applied = self._replay(upto)
        blob, nbytes = sm.serialize()
        return Snapshot(frontier or ZXID_ZERO, (blob, position), nbytes)

    def clone_state_machine(self):
        """Deep-copy the delivered state (leader's speculative copy)."""
        clone = self.app_factory()
        blob, _nbytes = self.sm.serialize()
        clone.restore(blob)
        return clone

    def note_established_leader(self, epoch):
        """The NEWLEADER quorum formed: the initial history is committed."""
        self.rebuild_state(upto=None)

    def adopt_history(self, snapshot, records):
        """Replace local history with a fetched one (discovery rare path)."""
        purged_through = None
        if snapshot is not None:
            self.storage.snapshots.save(
                snapshot.last_zxid, snapshot.state, snapshot.size
            )
            purged_through = snapshot.last_zxid
        self.storage.log.replace_with(records, purged_through=purged_through)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_established_leader(self):
        return (
            self.state == messages.LEADING
            and self.ctx is not None
            and self.ctx.established
        )

    @property
    def is_active_follower(self):
        return (
            self.state in (messages.FOLLOWING, messages.OBSERVING)
            and self.ctx is not None
            and getattr(self.ctx, "active", False)
        )

    def current_epoch(self):
        return self.storage.epochs.current_epoch

    def metrics(self):
        """Operational counters for dashboards/tests."""
        data = {
            "state": self.state,
            "incarnation": self.incarnation,
            "delivered": self.delivered_count,
            "position": self.position,
            "elections_decided": self.elections_decided,
            "times_led": self.times_led,
            "log_entries": len(self.storage.log),
            "log_flushes": self.storage.log.flushes,
            "snapshots": self.storage.snapshots.saves,
            "epoch_persists": self.storage.epochs.persist_count,
        }
        if self.state == messages.LEADING and self.ctx is not None:
            data["commits"] = self.ctx.commits
            data["proposals"] = self.ctx.counter
            data["acks_received"] = self.ctx.acks_received
            data["outstanding"] = len(self.ctx.proposals)
            data["sync_modes"] = dict(self.ctx.sync_modes)
        return data

    def __repr__(self):
        return "<ZabPeer %d %s>" % (self.peer_id, self.state)
