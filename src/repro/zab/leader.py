"""Leader-side protocol: discovery, synchronisation, broadcast.

One :class:`LeaderContext` exists per leadership attempt.  Life cycle:

1. **Discovery** — collect FOLLOWERINFO from a quorum, propose the new
   epoch ``e' = max(acceptedEpochs) + 1``, collect ACKEPOCH, and adopt the
   most recent history among the quorum (fetching it from a follower in
   the rare case that follower is fresher than the leader).
2. **Synchronisation** — bring each follower to the adopted initial
   history (DIFF / TRUNC / SNAP), send NEWLEADER(e'), and establish once a
   quorum has acknowledged.
3. **Broadcast** — pipelined two-phase commit: assign zxids ``(e', n)``,
   log + PROPOSE, count quorum ACKs, COMMIT in order.  Late followers are
   synchronised individually and join the broadcast stream.

The leader abdicates (peer returns to LOOKING) if it cannot establish
within ``init_limit`` ticks or later loses contact with a quorum.
"""

from repro.app.statemachine import Txn
from repro.zab import messages
from repro.zab.pipeline import Batcher, OutstandingWindow, PendingRequest
from repro.zab.sync import make_sync_plan
from repro.zab.zxid import Zxid, ZXID_ZERO

PHASE_DISCOVERY = "discovery"
PHASE_FETCH = "fetch-history"
PHASE_SYNC = "synchronization"
PHASE_BROADCAST = "broadcast"


class _FollowerHandle:
    """Per-learner connection state at the leader."""

    __slots__ = (
        "peer_id",
        "is_observer",
        "last_contact",
        "last_ack",
        "epoch_sent",
        "ackepoch",
        "in_stream",
        "synced",
    )

    def __init__(self, peer_id, is_observer, now):
        self.peer_id = peer_id
        self.is_observer = is_observer
        self.last_contact = now
        self.last_ack = now      # last proposal acknowledgement
        self.epoch_sent = False
        self.ackepoch = None     # (current_epoch, last_zxid)
        self.in_stream = False   # receives PROPOSE/COMMIT (or INFORM)
        self.synced = False      # acknowledged NEWLEADER


class _Proposal:
    """An outstanding broadcast transaction awaiting quorum ACKs."""

    __slots__ = ("txn", "size", "acks", "proposed_at", "quorum_at",
                 "quorum_src")

    def __init__(self, txn, size, proposed_at):
        self.txn = txn
        self.size = size
        self.acks = set()
        self.proposed_at = proposed_at
        self.quorum_at = None    # when the ACK quorum formed
        self.quorum_src = None   # the peer whose ACK completed it


#: How many propose timestamps a leader retains for late-ACK
#: attribution (see ``LeaderContext._recent_propose_t``).
_RECENT_PROPOSE_CAP = 4096


class LeaderContext:
    """Drives one leadership attempt of *peer*."""

    def __init__(self, peer):
        self.peer = peer
        self.config = peer.config
        self.epoch = None
        self.phase = PHASE_DISCOVERY
        self.established = False
        self.handles = {}
        self.followerinfos = {
            peer.peer_id: peer.storage.epochs.accepted_epoch
        }
        self.ackepochs = {peer.peer_id: self._own_position()}
        self.acked_newleader = set()
        self.counter = 0
        self.proposals = OutstandingWindow()
        self.pending = []
        self.spec_sm = None
        self.batcher = Batcher(
            peer, self.config.max_batch, self.config.batch_delay,
            self._propose_batch,
        )
        self._strategy = self.config.dissemination
        self._plan = ()            # relay forest (non-direct strategies)
        self._plan_members = ()    # sorted member ids the plan spans
        self._plan_member_set = frozenset()
        self._fetching_from = None
        self._handshake_timer = None
        self._ping_timer = None
        self._snapshot_cache = None
        self.commits = 0
        self.acks_received = 0     # proposal ACKs counted (all voters)
        self.sync_modes = {}       # sync mode -> count of learners served
        self._sync_waiters = []    # (barrier_zxid, peer_id, cookie)
        # Propose times of recent zxids, kept past commit so ACKs that
        # arrive *after* the quorum already committed (the straggler
        # signature) can still be lag-attributed in the trace.  Only
        # populated when tracing is on; bounded, insertion-ordered.
        self._recent_propose_t = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.peer.tracer.emit(
            "leader.phase", node=self.peer.peer_id, phase=self.phase,
        )
        self._handshake_timer = self.peer.set_timer(
            self.config.handshake_timeout(), self._handshake_expired
        )
        # A single-peer ensemble is a quorum by itself.
        self._try_decide_epoch()

    def close(self):
        """Cancel timers; called when the peer leaves LEADING."""
        for timer in (self._handshake_timer, self._ping_timer):
            if timer is not None:
                self.peer.cancel_timer(timer)
        self._handshake_timer = None
        self._ping_timer = None
        self.batcher.close()

    def _handshake_expired(self):
        self._handshake_timer = None
        if not self.established:
            self.peer.go_looking("leader handshake timed out")

    def _own_position(self):
        epochs = self.peer.storage.epochs
        last = self.peer.storage.log.last_durable() or ZXID_ZERO
        return (epochs.current_epoch, last)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, src, msg):
        handle = self.handles.get(src)
        if handle is not None:
            handle.last_contact = self.peer.sim.now
        if isinstance(msg, messages.FollowerInfo):
            self._on_follower_info(src, msg)
        elif isinstance(msg, messages.AckEpoch):
            self._on_ack_epoch(src, msg)
        elif isinstance(msg, messages.HistoryResponse):
            self._on_history_response(src, msg)
        elif isinstance(msg, messages.AckNewLeader):
            self._on_ack_new_leader(src, msg)
        elif isinstance(msg, messages.Ack):
            self._on_ack(src, msg.zxid)
        elif isinstance(msg, messages.Pong):
            pass  # last_contact already refreshed above
        elif isinstance(msg, messages.SyncRequest):
            self._on_sync_request(src, msg)
        elif isinstance(msg, messages.ForwardedRequest):
            self.submit(
                PendingRequest(
                    msg.request_id, msg.client, msg.origin, msg.op, msg.size
                )
            )
        # anything else is stale traffic from an older role; ignore

    # ------------------------------------------------------------------
    # Phase 1: discovery
    # ------------------------------------------------------------------

    def _on_follower_info(self, src, msg):
        handle = self.handles.get(src)
        if handle is None:
            handle = _FollowerHandle(
                src, src in self.config.observers, self.peer.sim.now
            )
            self.handles[src] = handle
        # A reconnecting learner restarts its handshake from scratch.
        handle.epoch_sent = False
        handle.ackepoch = None
        handle.in_stream = False
        handle.synced = False
        if not handle.is_observer:
            self.followerinfos[src] = msg.accepted_epoch
        if self.epoch is None:
            self._try_decide_epoch()
        else:
            self._send_new_epoch(handle)

    def _try_decide_epoch(self):
        voters = set(self.followerinfos)
        if not self.config.quorum.contains_quorum(voters):
            return
        self.epoch = max(self.followerinfos.values()) + 1
        self.peer.tracer.emit(
            "leader.newepoch", node=self.peer.peer_id, epoch=self.epoch,
        )
        self.peer.storage.epochs.set_accepted_epoch(self.epoch)
        for handle in self.handles.values():
            self._send_new_epoch(handle)
        # The leader "acks" its own NEWEPOCH implicitly via ackepochs.
        self._maybe_finish_discovery()

    def _send_new_epoch(self, handle):
        if self.epoch is not None and not handle.epoch_sent:
            handle.epoch_sent = True
            self.peer.send(handle.peer_id, messages.NewEpoch(self.epoch))

    def _on_ack_epoch(self, src, msg):
        handle = self.handles.get(src)
        if handle is None:
            return
        handle.ackepoch = (msg.current_epoch, msg.last_zxid or ZXID_ZERO)
        if self.phase == PHASE_DISCOVERY:
            if not handle.is_observer:
                self.ackepochs[src] = handle.ackepoch
            self._maybe_finish_discovery()
        elif self.phase in (PHASE_SYNC, PHASE_BROADCAST):
            # Late joiner: synchronise it individually.
            self._sync_follower(handle)

    def _maybe_finish_discovery(self):
        if self.phase != PHASE_DISCOVERY or self.epoch is None:
            return
        if not self.config.quorum.contains_quorum(set(self.ackepochs)):
            return
        best = max(
            self.ackepochs, key=lambda peer_id: self.ackepochs[peer_id]
        )
        if self.ackepochs[best] > self.ackepochs[self.peer.peer_id]:
            # Rare path: a follower's history is fresher than ours — fetch
            # it wholesale before synchronising anyone (paper Phase 1,
            # "the leader adopts the most recent history").
            self.phase = PHASE_FETCH
            self._fetching_from = best
            self.peer.send(best, messages.HistoryRequest())
        else:
            self._enter_sync()

    def _on_history_response(self, src, msg):
        if self.phase != PHASE_FETCH or src != self._fetching_from:
            return
        self.peer.adopt_history(msg.snapshot, msg.records)
        self._fetching_from = None
        self._enter_sync()

    # ------------------------------------------------------------------
    # Phase 2: synchronisation
    # ------------------------------------------------------------------

    def _enter_sync(self):
        self.phase = PHASE_SYNC
        self.peer.tracer.emit(
            "leader.phase", node=self.peer.peer_id, phase=self.phase,
            epoch=self.epoch,
        )
        # Self-ack of NEWLEADER: persist currentEpoch = e'.
        self.peer.storage.epochs.set_current_epoch(self.epoch)
        self.peer.tracer.emit(
            "peer.epoch", node=self.peer.peer_id, epoch=self.epoch,
        )
        self.acked_newleader = {self.peer.peer_id}
        for handle in self.handles.values():
            if handle.ackepoch is not None:
                self._sync_follower(handle)
        self._maybe_establish()

    def committed_horizon(self):
        """The zxid below which history is committed (sync target)."""
        if self.established:
            return self.peer.last_committed or ZXID_ZERO
        return self.peer.storage.log.last_durable() or ZXID_ZERO

    def _snapshot_provider(self):
        horizon = self.committed_horizon()
        if (
            self._snapshot_cache is None
            or self._snapshot_cache.last_zxid != horizon
        ):
            self._snapshot_cache = self.peer.build_snapshot(horizon)
        return self._snapshot_cache

    def _sync_follower(self, handle):
        current_epoch, follower_last = handle.ackepoch
        plan = make_sync_plan(
            self.peer.storage.log,
            follower_last,
            self.committed_horizon(),
            self.config.snap_sync_threshold,
            self._snapshot_provider,
        )
        self.sync_modes[plan.mode] = self.sync_modes.get(plan.mode, 0) + 1
        self.peer.tracer.emit(
            "leader.sync", node=self.peer.peer_id,
            follower=handle.peer_id, mode=plan.mode,
            records=len(plan.records), bytes=plan.payload_bytes(),
        )
        dst = handle.peer_id
        self.peer.send(
            dst,
            messages.SyncStart(
                plan.mode,
                trunc_zxid=plan.trunc_zxid,
                snapshot=plan.snapshot,
            ),
        )
        for record in plan.records:
            self.peer.send(
                dst, messages.SyncTxn(record.zxid, record.txn, record.size)
            )
        self.peer.send(
            dst,
            messages.NewLeader(
                self.epoch, last_zxid=self.committed_horizon()
            ),
        )
        handle.in_stream = True
        # Re-send outstanding (uncommitted) proposals so this follower can
        # acknowledge them; FIFO guarantees they arrive after NEWLEADER.
        if not handle.is_observer:
            for zxid, proposal in self.proposals.items():
                self.peer.send(
                    dst, messages.Propose(zxid, proposal.txn, proposal.size)
                )

    def _on_ack_new_leader(self, src, msg):
        handle = self.handles.get(src)
        if handle is None or msg.epoch != self.epoch:
            return
        handle.synced = True
        if not handle.is_observer:
            self.acked_newleader.add(src)
        if self.established:
            self.peer.send(src, messages.UpToDate(self.epoch))
        else:
            self._maybe_establish()

    def _maybe_establish(self):
        if self.established:
            return
        if not self.config.quorum.contains_quorum(self.acked_newleader):
            return
        self._establish()

    def _establish(self):
        self.established = True
        self.phase = PHASE_BROADCAST
        self.peer.tracer.emit(
            "leader.established", node=self.peer.peer_id, epoch=self.epoch,
            synced=sorted(self.acked_newleader),
        )
        self.peer.tracer.emit(
            "leader.phase", node=self.peer.peer_id, phase=self.phase,
            epoch=self.epoch,
        )
        if self._handshake_timer is not None:
            self.peer.cancel_timer(self._handshake_timer)
            self._handshake_timer = None
        # The adopted initial history is committed by NEWLEADER quorum.
        self.peer.note_established_leader(self.epoch)
        self.spec_sm = self.peer.clone_state_machine()
        for handle in self.handles.values():
            if handle.synced:
                self.peer.send(
                    handle.peer_id, messages.UpToDate(self.epoch)
                )
        self._arm_ping()
        self._drain_pending()

    # ------------------------------------------------------------------
    # Phase 3: broadcast
    # ------------------------------------------------------------------

    def submit(self, request):
        """Accept a client write (queues until established / window free)."""
        if not self.established:
            self.pending.append(request)
            return
        self.batcher.add(request)

    def _propose_batch(self, batch):
        for request in batch:
            if len(self.proposals) >= self.config.max_outstanding:
                self.pending.append(request)
            else:
                self._propose(request)

    def _propose(self, request):
        body = self.spec_sm.prepare(request.op)
        self.spec_sm.apply(body)
        self.counter += 1
        zxid = Zxid(self.epoch, self.counter)
        txn = Txn(
            txn_id="t%d.%d" % (self.epoch, self.counter),
            request_id=request.request_id,
            client=request.client,
            origin=request.origin,
            body=body,
            size=request.size,
        )
        if self.peer.trace is not None:
            self.peer.trace.record_broadcast(
                self.peer.peer_id, self.epoch, zxid, txn.txn_id
            )
        tracer = self.peer.tracer
        if tracer.active:
            tracer.emit(
                "leader.propose", node=self.peer.peer_id,
                zxid=zxid.as_tuple(), size=request.size,
            )
        proposal = _Proposal(txn, request.size, self.peer.sim.now)
        self.proposals[zxid] = proposal
        if tracer.active:
            recent = self._recent_propose_t
            recent[zxid] = proposal.proposed_at
            if len(recent) > _RECENT_PROPOSE_CAP:
                del recent[next(iter(recent))]
        message = messages.Propose(zxid, txn, request.size)
        if self._strategy.direct:
            for handle in self.handles.values():
                if handle.in_stream and not handle.is_observer:
                    self.peer.send(handle.peer_id, message)
        else:
            self._disseminate(message)
        self.peer.storage.log.append(
            zxid, txn, request.size,
            callback=lambda z=zxid: self._on_ack(self.peer.peer_id, z),
        )

    def _on_ack(self, src, zxid):
        proposal = self.proposals.get(zxid)
        if proposal is None or not self.config.is_voter(src):
            # An ACK for an already-committed proposal: protocol-wise a
            # no-op, but a *late* ACK from a voter is exactly how a
            # straggling follower shows up at the leader, so it still
            # gets lag-attributed in the trace for the health monitor.
            tracer = self.peer.tracer
            if tracer.active and self.config.is_voter(src):
                proposed_at = self._recent_propose_t.get(zxid)
                if proposed_at is not None:
                    tracer.emit(
                        "leader.ack", node=self.peer.peer_id,
                        zxid=zxid.as_tuple(), src=src,
                        lag=self.peer.sim.now - proposed_at, late=True,
                    )
            return
        handle = self.handles.get(src)
        if handle is not None:
            handle.last_ack = self.peer.sim.now
        self.acks_received += 1
        proposal.acks.add(src)
        tracer = self.peer.tracer
        if tracer.active:
            tracer.emit(
                "leader.ack", node=self.peer.peer_id,
                zxid=zxid.as_tuple(), src=src,
                lag=self.peer.sim.now - proposal.proposed_at,
            )
        if (
            proposal.quorum_at is None
            and self.config.quorum.contains_quorum(proposal.acks)
        ):
            proposal.quorum_at = self.peer.sim.now
            proposal.quorum_src = src
            if tracer.active:
                tracer.emit(
                    "leader.quorum", node=self.peer.peer_id,
                    zxid=zxid.as_tuple(), src=src,
                    acks=len(proposal.acks),
                    lag=proposal.quorum_at - proposal.proposed_at,
                )
        self._try_commit()

    def _try_commit(self):
        committed_any = False
        while self.proposals:
            zxid, proposal = self.proposals.head()
            if not self.config.quorum.contains_quorum(proposal.acks):
                break
            del self.proposals[zxid]
            self._commit(zxid, proposal)
            committed_any = True
        if committed_any:
            self._drain_pending()

    def _commit(self, zxid, proposal):
        self.commits += 1
        tracer = self.peer.tracer
        if tracer.active:
            tracer.emit(
                "leader.commit", node=self.peer.peer_id,
                zxid=zxid.as_tuple(), acks=sorted(proposal.acks),
                outstanding=len(self.proposals),
            )
        commit = messages.Commit(zxid)
        inform = None
        if self._strategy.direct:
            for handle in self.handles.values():
                if not handle.in_stream:
                    continue
                if handle.is_observer:
                    if handle.synced:
                        if inform is None:
                            inform = messages.Inform(
                                zxid, proposal.txn, proposal.size
                            )
                        self.peer.send(handle.peer_id, inform)
                else:
                    self.peer.send(handle.peer_id, commit)
        else:
            # Observers are never relay-plan members; INFORM stays a
            # direct leader->observer stream regardless of topology.
            for handle in self.handles.values():
                if handle.is_observer and handle.in_stream and handle.synced:
                    if inform is None:
                        inform = messages.Inform(
                            zxid, proposal.txn, proposal.size
                        )
                    self.peer.send(handle.peer_id, inform)
            self._disseminate(commit)
        self.peer.commit_local(zxid, proposal.txn)
        self._flush_sync_waiters(zxid)

    # ------------------------------------------------------------------
    # Relay-plan dissemination (non-direct topologies)
    # ------------------------------------------------------------------

    def _refresh_plan(self):
        """Recompute the relay forest when plan membership changed.

        Plan members are the *synced* voter followers still in live
        contact; a crashed relay falls out after ``staleness_timeout``
        so new proposals route around it.  Followers that are in the
        broadcast stream but not (yet, or no longer) plan members are
        fed directly — FIFO with their sync stream, which makes the
        direct->relayed handoff at sync completion safe.
        """
        horizon = self.peer.sim.now - self.config.staleness_timeout()
        members = tuple(sorted(
            handle.peer_id
            for handle in self.handles.values()
            if handle.synced and not handle.is_observer
            and handle.last_contact >= horizon
        ))
        if members != self._plan_members:
            self._plan_members = members
            self._plan_member_set = frozenset(members)
            self._plan = self._strategy.plan(self.peer.peer_id, members)
            tracer = self.peer.tracer
            if tracer.active:
                tracer.emit(
                    "leader.plan", node=self.peer.peer_id,
                    topology=self._strategy.name, members=list(members),
                )
        return self._plan

    def _disseminate(self, message):
        """Fan one broadcast-phase message out along the relay plan."""
        plan = self._refresh_plan()
        members = self._plan_member_set
        send = self.peer.send
        for handle in self.handles.values():
            if (
                handle.in_stream
                and not handle.is_observer
                and handle.peer_id not in members
            ):
                send(handle.peer_id, message)
        for node, children in plan:
            if children:
                send(node, messages.Relay(
                    self.peer.peer_id, self.epoch, message, children
                ))
            else:
                send(node, message)

    # ------------------------------------------------------------------
    # Read-path flush (ZooKeeper's sync())
    # ------------------------------------------------------------------

    def _on_sync_request(self, src, msg):
        """Answer once everything currently outstanding has committed."""
        if not self.proposals:
            frontier = self.peer.last_committed or ZXID_ZERO
            self.peer.send(src, messages.SyncReply(msg.cookie, frontier))
            return
        barrier = next(reversed(self.proposals))  # newest outstanding
        self._sync_waiters.append((barrier, src, msg.cookie))

    def sync_barrier(self, callback):
        """Local flavour of sync: run *callback(frontier)* once every
        currently-outstanding proposal has committed (leader-side
        linearizable read point)."""
        if not self.proposals:
            callback(self.peer.last_committed or ZXID_ZERO)
            return
        barrier = next(reversed(self.proposals))
        self._sync_waiters.append((barrier, None, callback))

    def _flush_sync_waiters(self, committed_zxid):
        if not self._sync_waiters:
            return
        remaining = []
        for barrier, dst, cookie in self._sync_waiters:
            if barrier <= committed_zxid:
                if dst is None:
                    cookie(committed_zxid)  # local callback
                else:
                    self.peer.send(
                        dst, messages.SyncReply(cookie, committed_zxid)
                    )
            else:
                remaining.append((barrier, dst, cookie))
        self._sync_waiters = remaining

    def _drain_pending(self):
        while (
            self.pending
            and self.established
            and len(self.proposals) < self.config.max_outstanding
        ):
            self._propose(self.pending.pop(0))

    # ------------------------------------------------------------------
    # Heartbeats and quorum supervision
    # ------------------------------------------------------------------

    def _arm_ping(self):
        self._ping_timer = self.peer.set_timer(
            self.config.tick, self._on_ping_tick
        )

    def _on_ping_tick(self):
        self._ping_timer = None
        digest_position, digest = self.peer.latest_digest()
        ping = messages.Ping(
            self.peer.last_committed or ZXID_ZERO,
            digest_position=digest_position,
            digest=digest,
        )
        for handle in self.handles.values():
            if handle.in_stream:
                self.peer.send(handle.peer_id, ping)
        alive = {self.peer.peer_id}
        now = self.peer.sim.now
        horizon = now - self.config.staleness_timeout()
        # When proposals have been stuck outstanding past the staleness
        # budget, heartbeat replies alone do not count: a follower must
        # be making ACK *progress* to stay in the synced set (a wedged
        # disk answers pings forever but can never acknowledge).
        head = self.proposals.head()
        stalled_since = (
            head[1].proposed_at
            if head is not None
            and now - head[1].proposed_at
            > self.config.staleness_timeout()
            else None
        )
        for handle in self.handles.values():
            if handle.is_observer or handle.last_contact < horizon:
                continue
            if (
                stalled_since is not None
                and handle.in_stream
                and handle.last_ack < stalled_since
            ):
                continue  # no progress on the stuck pipeline
            alive.add(handle.peer_id)
        if not self.config.quorum.contains_quorum(alive):
            self.peer.go_looking("leader lost follower quorum")
            return
        self._arm_ping()
