"""Fast Leader Election — the Phase 0 leader oracle.

FLE elects the voter with the most advanced ``(currentEpoch, lastZxid)``
among a quorum, breaking ties by server id.  Electing the peer with the
freshest history is what lets Zab's discovery phase usually skip history
transfer: the elected leader already has every transaction that could have
been committed.

The implementation follows ZooKeeper's: logical election rounds, a
*recvset* of votes from peers still LOOKING, an *outofelection* set of
votes from peers already serving (used by rejoining nodes to find the
established leader), vote re-broadcast on change, and a finalize wait that
gives a better straggler vote a chance to arrive before committing to a
winner.
"""

from repro.zab import messages
from repro.zab.zxid import ZXID_ZERO


def _vote_key(peer_epoch, zxid, leader):
    """Total order on votes: epoch, then zxid, then server id."""
    return (peer_epoch, zxid if zxid is not None else ZXID_ZERO, leader)


class FastLeaderElection:
    """One peer's view of the ongoing election."""

    def __init__(self, peer):
        self.peer = peer
        self.round = 0
        self.vote = None              # (peer_epoch, zxid, leader_id)
        self.recvset = {}             # voter -> vote (same round, LOOKING)
        self.outofelection = {}       # voter -> (vote, sender_state)
        self._resend_timer = None
        self._finalize_timer = None
        self._finalize_vote = None
        self.elected_vote = None      # vote we last elected with

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        """Begin (or restart) an election round.  Peer must be LOOKING."""
        self.stop()
        self.round += 1
        epoch, zxid = self.peer.vote_basis()
        self.peer.tracer.emit(
            "election.start", node=self.peer.peer_id,
            round=self.round, epoch=epoch, zxid=zxid.as_tuple(),
        )
        self.vote = _vote_key(epoch, zxid, self.peer.peer_id)
        self.recvset = {self.peer.peer_id: self.vote}
        self.outofelection = {}
        self._broadcast()
        self._arm_resend()
        self._check_agreement()

    def stop(self):
        """Cancel timers; called when the peer leaves LOOKING or crashes."""
        if self._resend_timer is not None:
            self.peer.cancel_timer(self._resend_timer)
            self._resend_timer = None
        if self._finalize_timer is not None:
            self.peer.cancel_timer(self._finalize_timer)
            self._finalize_timer = None
        self._finalize_vote = None

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------

    def _notification(self):
        peer_epoch, zxid, leader = self.vote
        return messages.Notification(
            leader=leader,
            zxid=zxid,
            peer_epoch=peer_epoch,
            round=self.round,
            sender_state=self.peer.state,
        )

    def _broadcast(self):
        note = self._notification()
        for voter in self.peer.config.voters:
            if voter != self.peer.peer_id:
                self.peer.send(voter, note)

    def _send_to(self, dst):
        self.peer.send(dst, self._notification())

    def _arm_resend(self):
        interval = self.peer.config.notification_interval
        jitter = self.peer.rng.uniform(0.0, interval * 0.2)

        def resend():
            self._resend_timer = None
            if self.peer.state == messages.LOOKING:
                self._broadcast()
                self._arm_resend()

        self._resend_timer = self.peer.election_timer(
            interval + jitter, resend
        )

    # ------------------------------------------------------------------
    # Notification handling
    # ------------------------------------------------------------------

    def on_notification(self, src, note):
        """Process one incoming vote.

        If this peer is no longer LOOKING it answers LOOKING senders with
        its current (elected) vote so they can locate the leader.
        """
        if self.peer.state != messages.LOOKING:
            if note.sender_state in (messages.LOOKING, messages.OBSERVING):
                self._reply_with_elected(src)
            return

        if note.sender_state == messages.LOOKING:
            self._on_looking_vote(src, note)
        else:
            self._on_serving_vote(src, note)

    def _on_looking_vote(self, src, note):
        if note.round > self.round:
            # We are behind: adopt the newer round and re-seed our vote.
            self.round = note.round
            self.recvset = {}
            epoch, zxid = self.peer.vote_basis()
            base = _vote_key(epoch, zxid, self.peer.peer_id)
            self.vote = max(base, note.vote())
            self._broadcast()
        elif note.round < self.round:
            # Sender is behind: help it catch up, ignore its stale vote.
            self._send_to(src)
            return
        elif note.vote() > self.vote:
            self.vote = note.vote()
            self._broadcast()
        elif note.vote() < self.vote:
            # Make sure the sender learns about our better vote even if it
            # missed our original broadcast (e.g. it registered late).
            self._send_to(src)

        self.recvset[src] = note.vote()
        self.recvset[self.peer.peer_id] = self.vote
        self._check_agreement()

    def _on_serving_vote(self, src, note):
        self.outofelection[src] = (note.vote(), note.sender_state)
        leader = note.leader
        supporters = {
            voter
            for voter, (vote, _state) in self.outofelection.items()
            if vote[2] == leader
        }
        leader_claims = (
            leader in self.outofelection
            and self.outofelection[leader][1] == messages.LEADING
        )
        if leader_claims and self.peer.config.quorum.contains_quorum(
            supporters
        ):
            # Adopt the leader's vote so that our own replies (and
            # elected_vote) point future joiners at the leader, not at us.
            self.vote = self.outofelection[leader][0]
            self._decide(leader)

    def _reply_with_elected(self, dst):
        vote = self.elected_vote or self.vote
        if vote is None:
            return
        peer_epoch, zxid, leader = vote
        self.peer.send(
            dst,
            messages.Notification(
                leader=leader,
                zxid=zxid,
                peer_epoch=peer_epoch,
                round=self.round,
                sender_state=self.peer.state,
            ),
        )

    # ------------------------------------------------------------------
    # Deciding
    # ------------------------------------------------------------------

    def _check_agreement(self):
        agreeing = {
            voter
            for voter, vote in self.recvset.items()
            if vote == self.vote
        }
        if not self.peer.config.quorum.contains_quorum(agreeing):
            self._cancel_finalize()
            return
        if (
            self._finalize_timer is not None
            and self._finalize_vote == self.vote
        ):
            return  # already counting down for this vote
        self._cancel_finalize()
        self._finalize_vote = self.vote

        def finalize():
            self._finalize_timer = None
            if (
                self.peer.state == messages.LOOKING
                and self.vote == self._finalize_vote
            ):
                self._decide(self.vote[2])

        self._finalize_timer = self.peer.election_timer(
            self.peer.config.election_finalize_wait, finalize
        )

    def _cancel_finalize(self):
        if self._finalize_timer is not None:
            self.peer.cancel_timer(self._finalize_timer)
            self._finalize_timer = None
        self._finalize_vote = None

    def _decide(self, leader):
        self.elected_vote = self.vote
        self.peer.tracer.emit(
            "election.decided", node=self.peer.peer_id,
            leader=leader, round=self.round,
        )
        self.stop()
        self.peer.on_election_decided(leader)
