"""Follower-side protocol.

A :class:`FollowerContext` handles one attempt to follow a specific
leader: the discovery/synchronisation handshake (FOLLOWERINFO → NEWEPOCH →
ACKEPOCH → sync stream → NEWLEADER → ACK → UPTODATE) and then the
broadcast phase (log + ACK proposals, deliver on COMMIT, answer PINGs,
forward client writes).

Safety-critical details implemented here:

- ``acceptedEpoch``/``currentEpoch`` are persisted exactly where the paper
  requires (before ACKEPOCH / before ACK-NEWLEADER);
- transactions delivered to the state machine are only those at or below
  the *sync horizon* (the initial history, committed by NEWLEADER quorum)
  or explicitly covered by a COMMIT — proposals logged between NEWLEADER
  and UPTODATE wait for their commits;
- the follower abandons the leader and re-enters election if the
  handshake exceeds ``init_limit`` ticks or pings stop for ``sync_limit``
  ticks.
"""

from repro.zab import messages
from repro.zab.zxid import ZXID_ZERO

PHASE_DISCOVERY = "discovery"
PHASE_SYNC = "synchronization"
PHASE_BROADCAST = "broadcast"


def _contiguous(last, zxid):
    """True if *zxid* directly extends *last* in the broadcast order.

    Counters are consecutive within an epoch and restart at 1 when the
    epoch changes; anything else means the channel dropped a proposal.
    """
    if last is None:
        return zxid.counter == 1
    if zxid.epoch == last.epoch:
        return zxid.counter == last.counter + 1
    return zxid.counter == 1


class FollowerContext:
    """Drives one following attempt of *peer* towards *leader_id*."""

    def __init__(self, peer, leader_id):
        self.peer = peer
        self.config = peer.config
        self.leader_id = leader_id
        self.phase = PHASE_DISCOVERY
        self.active = False          # true after UPTODATE
        self.epoch = None
        self.horizon = None          # last zxid of the synced history
        self.commit_frontier = ZXID_ZERO
        self._sync_records = []
        self._pending_snapshot = None
        self._saw_newleader = False
        self._handshake_timer = None
        self._watchdog_timer = None
        self._info_timer = None
        self._got_new_epoch = False
        self._last_leader_contact = peer.sim.now
        self._sync_seq = 0
        self._sync_reads = {}      # cookie -> (query, callback)
        self._sync_barriers = []   # (zxid, cookie) awaiting local apply
        # Non-direct dissemination: proposals arrive via relay hops, so
        # a lost relay shows up as the leader's commit frontier running
        # ahead of our log.  _relay_lag remembers the stuck log position
        # between pings (two lagging pings with no append progress means
        # the relayed stream really broke, not just in flight).
        self._relayed = not peer.config.dissemination.direct
        self._relay_lag = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self._send_follower_info()
        self._handshake_timer = self.peer.set_timer(
            self.config.handshake_timeout(), self._handshake_expired
        )
        # The elected leader may not have entered LEADING yet when our
        # first FOLLOWERINFO lands (it would be silently ignored), so
        # retransmit until the handshake makes progress.
        self._info_timer = self.peer.set_timer(
            self.config.tick, self._resend_follower_info
        )

    def _send_follower_info(self):
        storage = self.peer.storage
        self.peer.send(
            self.leader_id,
            messages.FollowerInfo(
                storage.epochs.accepted_epoch,
                storage.log.last_durable() or ZXID_ZERO,
            ),
        )

    def _resend_follower_info(self):
        self._info_timer = None
        if self.phase == PHASE_DISCOVERY and not self._got_new_epoch:
            self._send_follower_info()
            self._info_timer = self.peer.set_timer(
                self.config.tick, self._resend_follower_info
            )

    def close(self):
        for timer in (self._handshake_timer, self._watchdog_timer,
                      self._info_timer):
            if timer is not None:
                self.peer.cancel_timer(timer)
        self._handshake_timer = None
        self._watchdog_timer = None
        self._info_timer = None
        # Fail outstanding sync-reads: the leader channel is gone.
        for _query, callback in self._sync_reads.values():
            callback(("error", "connection-lost"))
        self._sync_reads = {}
        self._sync_barriers = []

    def _handshake_expired(self):
        self._handshake_timer = None
        if not self.active:
            self.peer.go_looking("follower handshake timed out")

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, src, msg):
        if isinstance(msg, messages.Relay):
            # Relayed broadcast traffic arrives from a peer follower,
            # not the leader itself — validate by origin/epoch instead
            # of transport source.
            self._on_relay(msg)
            return
        if src != self.leader_id:
            return  # stale traffic from a deposed leader
        self._last_leader_contact = self.peer.sim.now
        if isinstance(msg, messages.NewEpoch):
            self._on_new_epoch(msg)
        elif isinstance(msg, messages.HistoryRequest):
            self._on_history_request()
        elif isinstance(msg, messages.SyncStart):
            self._on_sync_start(msg)
        elif isinstance(msg, messages.SyncTxn):
            self._on_sync_txn(msg)
        elif isinstance(msg, messages.NewLeader):
            self._on_new_leader(msg)
        elif isinstance(msg, messages.UpToDate):
            self._on_up_to_date(msg)
        elif isinstance(msg, messages.Propose):
            self._on_propose(msg)
        elif isinstance(msg, messages.Commit):
            self._on_commit(msg.zxid)
        elif isinstance(msg, messages.Ping):
            self._on_ping(msg)
        elif isinstance(msg, messages.SyncReply):
            self._on_sync_reply(msg)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    def _on_new_epoch(self, msg):
        epochs = self.peer.storage.epochs
        if msg.epoch < epochs.accepted_epoch:
            # A leader from the past; do not follow it.
            self.peer.go_looking("NEWEPOCH older than acceptedEpoch")
            return
        self._got_new_epoch = True
        if msg.epoch > epochs.accepted_epoch:
            epochs.set_accepted_epoch(msg.epoch)
        self.peer.send(
            self.leader_id,
            messages.AckEpoch(
                epochs.current_epoch,
                self.peer.storage.log.last_durable() or ZXID_ZERO,
            ),
        )

    def _on_history_request(self):
        storage = self.peer.storage
        snapshot = None
        if storage.log.purged_through() is not None:
            snapshot = storage.snapshots.latest()
        self.peer.send(
            self.leader_id,
            messages.HistoryResponse(
                storage.epochs.current_epoch,
                storage.log.all_entries(),
                snapshot=snapshot,
            ),
        )

    def _on_sync_start(self, msg):
        self.phase = PHASE_SYNC
        self.peer.tracer.emit(
            "follower.sync", node=self.peer.peer_id,
            leader=self.leader_id, mode=msg.mode,
        )
        self._sync_records = []
        self._pending_snapshot = None
        if msg.mode == messages.SYNC_TRUNC:
            self.peer.storage.log.truncate(msg.trunc_zxid)
        elif msg.mode == messages.SYNC_SNAP:
            self._pending_snapshot = msg.snapshot

    def _on_sync_txn(self, msg):
        self._sync_records.append((msg.zxid, msg.txn, msg.size))

    def _on_new_leader(self, msg):
        epochs = self.peer.storage.epochs
        if msg.epoch < epochs.accepted_epoch:
            self.peer.go_looking("NEWLEADER older than acceptedEpoch")
            return
        storage = self.peer.storage
        if self._pending_snapshot is not None:
            storage.install_snapshot(self._pending_snapshot)
        for zxid, txn, size in self._sync_records:
            last = storage.log.last_durable()
            if last is not None and zxid <= last:
                continue  # duplicate from a repeated sync stream
            storage.log.install_record(zxid, txn, size)
        self._sync_records = []
        self._pending_snapshot = None
        self.horizon = storage.log.last_durable() or ZXID_ZERO
        if msg.last_zxid is not None and self.horizon != msg.last_zxid:
            # The sync stream was damaged in flight (Zab assumes
            # reliable FIFO channels; a hole means the channel broke).
            self.peer.go_looking("sync stream incomplete")
            return
        epochs.set_current_epoch(msg.epoch)
        self.peer.tracer.emit(
            "peer.epoch", node=self.peer.peer_id, epoch=msg.epoch,
        )
        self.epoch = msg.epoch
        self._saw_newleader = True
        self.peer.send(
            self.leader_id, messages.AckNewLeader(msg.epoch, self.horizon)
        )

    def _on_up_to_date(self, msg):
        if not self._saw_newleader or msg.epoch != self.epoch:
            return
        if self._handshake_timer is not None:
            self.peer.cancel_timer(self._handshake_timer)
            self._handshake_timer = None
        self.phase = PHASE_BROADCAST
        self.active = True
        self.peer.tracer.emit(
            "follower.active", node=self.peer.peer_id,
            leader=self.leader_id, epoch=self.epoch,
            horizon=self.horizon.as_tuple(),
        )
        # The initial history (everything up to the sync horizon) is
        # committed; proposals logged after it wait for COMMITs.
        self.peer.rebuild_state(upto=self.horizon)
        self._deliver_committed()
        self._arm_watchdog()
        self.peer.on_follower_active()

    # ------------------------------------------------------------------
    # Broadcast phase
    # ------------------------------------------------------------------

    def _on_relay(self, msg):
        """Forward one relayed hop onward, then process its payload.

        Only relays from the leader we are actively following (matching
        origin *and* epoch) count; anything else is a deposed leader's
        in-flight plan and is dropped — the downstream nodes it would
        have fed detect the gap and re-sync, exactly like a lost direct
        channel.  Forwarding happens *before* local processing so a
        poison payload cannot starve the rest of the route.
        """
        if msg.origin != self.leader_id or msg.epoch != self.epoch:
            return
        self._last_leader_contact = self.peer.sim.now
        route = msg.route
        if route:
            tracer = self.peer.tracer
            if tracer.active:
                zxid = msg.zxid
                tracer.emit(
                    "follower.relay", node=self.peer.peer_id,
                    origin=msg.origin,
                    type=type(msg.payload).__name__,
                    zxid=zxid.as_tuple() if zxid is not None else None,
                    fanout=len(route),
                )
            for node, children in route:
                self.peer.send(node, messages.Relay(
                    msg.origin, msg.epoch, msg.payload, children
                ))
        self.on_message(self.leader_id, msg.payload)

    def _on_propose(self, msg):
        if not self._saw_newleader or msg.zxid.epoch != self.epoch:
            return
        log = self.peer.storage.log
        last = log.last_appended()
        if last is not None and msg.zxid <= last:
            # Duplicate from a re-sync; it is already durable.
            self.peer.send(self.leader_id, messages.Ack(msg.zxid))
            return
        if not _contiguous(last, msg.zxid):
            # A proposal went missing: the supposedly-FIFO-reliable
            # channel dropped something.  Logging past the hole would
            # break total order — abandon and re-sync instead (the
            # moral equivalent of a TCP connection reset).
            self.peer.go_looking(
                "proposal gap: got %r after %r" % (msg.zxid, last)
            )
            return
        log.append(
            msg.zxid, msg.txn, msg.size,
            callback=lambda z=msg.zxid: self._on_durable(z),
        )

    def _on_durable(self, zxid):
        tracer = self.peer.tracer
        if tracer.active:
            tracer.emit(
                "follower.ack", node=self.peer.peer_id,
                zxid=zxid.as_tuple(), leader=self.leader_id,
            )
        self.peer.send(self.leader_id, messages.Ack(zxid))
        self._deliver_committed()

    def _on_commit(self, zxid):
        if zxid > self.commit_frontier:
            self.commit_frontier = zxid
        self._deliver_committed()

    def _deliver_committed(self):
        if not self.active:
            return
        log = self.peer.storage.log
        start = self.peer.last_committed
        for record in log.entries_after(start):
            if record.zxid > self.commit_frontier:
                break
            self.peer.commit_local(record.zxid, record.txn)
        self._serve_ready_sync_reads()

    # ------------------------------------------------------------------
    # Fresh reads (ZooKeeper's sync())
    # ------------------------------------------------------------------

    def sync_read(self, query, callback):
        """Serve *query* no staler than the leader's commit frontier at
        the moment this call is made."""
        self._sync_seq += 1
        cookie = (self.peer.peer_id, self._sync_seq)
        self._sync_reads[cookie] = (query, callback)
        self.peer.send(self.leader_id, messages.SyncRequest(cookie))

    def _on_sync_reply(self, msg):
        if msg.cookie not in self._sync_reads:
            return
        self._sync_barriers.append((msg.zxid, msg.cookie))
        self._serve_ready_sync_reads()

    def _serve_ready_sync_reads(self):
        if not self._sync_barriers or not self.active:
            return
        frontier = self.peer.last_committed
        remaining = []
        for zxid, cookie in self._sync_barriers:
            if frontier is not None and zxid <= frontier:
                query, callback = self._sync_reads.pop(cookie)
                callback(self.peer.sm.read(query))
            else:
                remaining.append((zxid, cookie))
        self._sync_barriers = remaining

    # ------------------------------------------------------------------
    # Heartbeats / failure detection
    # ------------------------------------------------------------------

    def _on_ping(self, msg):
        if self._relayed and self.active and msg.last_committed:
            # Relayed proposals can be lost without breaking any direct
            # FIFO channel (a relay crashed mid-hop).  The leader's
            # frontier running ahead of our *log* across two pings with
            # no append progress means the relayed stream broke; re-sync.
            last = self.peer.storage.log.last_appended() or ZXID_ZERO
            if msg.last_committed > last:
                if self._relay_lag == last:
                    self.peer.go_looking(
                        "missed relayed proposals: leader committed %r, "
                        "log at %r" % (msg.last_committed, last)
                    )
                    return
                self._relay_lag = last
            else:
                self._relay_lag = None
        if msg.last_committed and msg.last_committed > self.commit_frontier:
            self.commit_frontier = msg.last_committed
        self._deliver_committed()
        if msg.digest is not None:
            self.peer.check_digest(msg.digest_position, msg.digest)
        self.peer.send(
            self.leader_id,
            messages.Pong(
                self.peer.storage.log.last_durable() or ZXID_ZERO
            ),
        )

    def _arm_watchdog(self):
        self._watchdog_timer = self.peer.set_timer(
            self.config.tick, self._check_leader_alive
        )

    def _check_leader_alive(self):
        self._watchdog_timer = None
        silence = self.peer.sim.now - self._last_leader_contact
        if silence > self.config.staleness_timeout():
            self.peer.go_looking("leader silent for %.3fs" % silence)
            return
        self._arm_watchdog()

    # ------------------------------------------------------------------
    # Client traffic
    # ------------------------------------------------------------------

    def forward_request(self, request):
        """Relay a client write to the leader (follower write path)."""
        self.peer.send(
            self.leader_id,
            messages.ForwardedRequest(
                request.request_id,
                request.client,
                request.origin,
                request.op,
                request.size,
            ),
        )
