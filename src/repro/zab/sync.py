"""Synchronisation planning (Phase 2).

Given the leader's log/snapshot state and a follower's last zxid, decide
how to bring the follower into the leader's history, mirroring ZooKeeper's
learner sync:

- **DIFF** — ship the missing committed records;
- **TRUNC** — the follower logged proposals beyond the leader's committed
  horizon (a dead leader's uncommitted tail); have it truncate, then it is
  aligned;
- **SNAP** — the follower is too far behind (records purged, history
  diverged, or the lag exceeds ``snap_sync_threshold``); ship a full state
  snapshot.

The plan always targets the leader's *committed horizon*: at establishment
time that is the entire adopted initial history, later it is the leader's
commit frontier (outstanding proposals are re-sent separately as ordinary
PROPOSE messages so the follower can acknowledge them).
"""

from repro.zab.zxid import ZXID_ZERO
from repro.zab import messages


class SyncPlan:
    """The decision for one follower."""

    __slots__ = ("mode", "trunc_zxid", "snapshot", "records")

    def __init__(self, mode, trunc_zxid=None, snapshot=None, records=()):
        self.mode = mode
        self.trunc_zxid = trunc_zxid
        self.snapshot = snapshot
        self.records = list(records)

    def payload_bytes(self):
        """Bytes this plan ships (snapshot + records), for experiment E6."""
        total = sum(record.size for record in self.records)
        if self.snapshot is not None:
            total += self.snapshot.size
        return total

    def __repr__(self):
        return "SyncPlan(%s, %d records, %dB)" % (
            self.mode, len(self.records), self.payload_bytes(),
        )


def make_sync_plan(log, follower_last, committed, snap_threshold,
                   snapshot_provider):
    """Compute the sync plan for one follower.

    Parameters
    ----------
    log:
        The leader's :class:`~repro.storage.txnlog.TxnLog`.
    follower_last:
        The follower's last durable zxid (``ZXID_ZERO`` or ``None`` for an
        empty log), as reported in its ACKEPOCH.
    committed:
        The leader's committed horizon (zxid or ``None``).
    snap_threshold:
        Lag (in records) beyond which SNAP is preferred over DIFF.
    snapshot_provider:
        Zero-argument callable returning a
        :class:`~repro.storage.snapshot.Snapshot` serialised exactly at
        *committed*; only invoked when a SNAP is actually needed.
    """
    follower_last = follower_last or ZXID_ZERO
    committed = committed or ZXID_ZERO

    if follower_last == committed:
        return SyncPlan(messages.SYNC_DIFF)

    if follower_last > committed:
        # Uncommitted tail from a dead leader: drop it.  Within-epoch logs
        # are prefix-consistent, so after truncation the follower holds
        # exactly the committed history.
        return SyncPlan(messages.SYNC_TRUNC, trunc_zxid=committed)

    # follower_last < committed: find the records it is missing.
    records = [
        record
        for record in log.entries_after(
            None if follower_last == ZXID_ZERO else follower_last
        )
        if record.zxid <= committed
    ]

    have_start = (
        follower_last == ZXID_ZERO
        and log.purged_through() is None
    ) or (
        follower_last != ZXID_ZERO
        and (
            log.contains(follower_last)
            or follower_last == log.purged_through()
        )
    )

    if have_start and len(records) <= snap_threshold:
        return SyncPlan(messages.SYNC_DIFF, records=records)

    snapshot = snapshot_provider()
    return SyncPlan(messages.SYNC_SNAP, snapshot=snapshot)
