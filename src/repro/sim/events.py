"""Scheduled events for the simulation kernel."""

import functools


@functools.total_ordering
class Event:
    """A callback scheduled at a point in virtual time.

    Events are ordered by ``(time, seq)``; *seq* is a monotonically
    increasing tie-breaker assigned by the simulator so that two events
    scheduled for the same instant fire in scheduling order.  Cancelled
    events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "on_cancel")

    def __init__(self, time, seq, fn, args=()):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.on_cancel = None  # kernel hook: keeps its live count exact

    def cancel(self):
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        hook = self.on_cancel
        self.on_cancel = None
        if hook is not None:
            hook()

    def fire(self):
        """Invoke the callback unless the event was cancelled."""
        if self.cancelled:
            return
        fn, args = self.fn, self.args
        self.cancel()
        fn(*args)

    def __hash__(self):
        return self.seq  # seq is unique per simulator

    def __eq__(self, other):
        return (self.time, self.seq) == (other.time, other.seq)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "<Event t=%.6f seq=%d %s>" % (self.time, self.seq, state)
