"""Scheduled events for the simulation kernel."""

import functools


@functools.total_ordering
class Event:
    """A callback scheduled at a point in virtual time.

    Events are ordered by ``(time, seq)``; *seq* is a monotonically
    increasing tie-breaker assigned by the simulator so that two events
    scheduled for the same instant fire in scheduling order.  The kernel
    keeps its heap entries as ``(time, seq, event)`` tuples so ordering
    never goes through these Python-level comparison methods on the hot
    path; they are kept for inspection code that sorts events directly.
    Cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "kernel")

    def __init__(self, time, seq, fn, args=(), kernel=None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.kernel = kernel  # owning Simulator: keeps its live count exact

    def cancel(self):
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        kernel = self.kernel
        self.kernel = None
        if kernel is not None:
            # Inlined kernel._note_cancelled(): one counter bump keeps
            # Simulator.pending() exact without a call per cancel.
            kernel._cancelled += 1

    def fire(self):
        """Invoke the callback unless the event was cancelled.

        Consumes the event without routing through :meth:`cancel`: the
        kernel accounts for fired events via its own counter, so firing
        must not also bump the owner's cancellation count.
        """
        if self.cancelled:
            return
        fn = self.fn
        args = self.args
        self.cancelled = True
        self.fn = None
        self.args = ()
        self.kernel = None
        fn(*args)

    def __hash__(self):
        return self.seq  # seq is unique per simulator

    def __eq__(self, other):
        return (self.time, self.seq) == (other.time, other.seq)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "<Event t=%.6f seq=%d %s>" % (self.time, self.seq, state)
