"""Deterministic, splittable randomness.

Each simulated component gets its own :class:`random.Random` stream derived
from the root seed and a stable label.  This keeps components independent:
adding a random draw in the network model does not perturb the sequence seen
by, say, the election module, so experiments stay comparable across code
changes.
"""

import hashlib
import random


class SplitRandom:
    """A root seed from which per-component PRNG streams are derived."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, label):
        """Return the (cached) PRNG stream for *label*."""
        if label not in self._streams:
            digest = hashlib.sha256(
                ("%s/%s" % (self.seed, label)).encode("utf-8")
            ).digest()
            self._streams[label] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[label]

    def split(self, label):
        """Derive a child :class:`SplitRandom` rooted at *label*."""
        return SplitRandom("%s/%s" % (self.seed, label))
