"""The simulation event loop."""

import heapq

from repro.common.errors import ReproError
from repro.sim.events import Event
from repro.sim.random import SplitRandom


class SimulationLimitError(ReproError):
    """The simulator processed more events than the configured bound."""


class Simulator:
    """Single-threaded virtual-time event loop.

    All simulated components share one simulator.  Time is a float in
    seconds.  Components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop runs them in
    timestamp order via :meth:`run`.
    """

    def __init__(self, seed=0):
        self._queue = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self._live = 0           # not-yet-cancelled events in the queue
        self.random = SplitRandom(seed)

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past: %r < now=%r" % (time, self._now)
            )
        event = Event(time, self._seq, fn, args)
        event.on_cancel = self._note_cancelled
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def _note_cancelled(self):
        self._live -= 1

    def pending(self):
        """Number of not-yet-cancelled events in the queue (O(1)).

        Maintained incrementally: schedule_at counts up, and every
        cancellation — explicit or the self-cancel inside
        :meth:`~repro.sim.events.Event.fire` — counts down through the
        event's ``on_cancel`` hook, so no heap scan is ever needed.
        """
        return self._live

    def run(self, until=None, max_events=None):
        """Process events in order.

        Stops when the queue drains, when virtual time would exceed *until*,
        or after *max_events* callbacks.  Returns the virtual time at which
        the loop stopped.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = event.time
            event.fire()
            self._events_fired += 1
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationLimitError(
                    "stopped after %d events at t=%.6f" % (fired, self._now)
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_for(self, duration):
        """Advance virtual time by *duration* seconds, processing events."""
        return self.run(until=self._now + duration)

    def attach_metrics(self, registry):
        """Expose kernel health to a metrics registry.

        Registers callback gauges (read lazily at snapshot time, so the
        event loop's hot path is untouched): ``sim.queue_depth``,
        ``sim.events_fired``, and ``sim.now``.
        """
        registry.gauge("sim.queue_depth", fn=self.pending)
        registry.gauge("sim.events_fired", fn=lambda: self.events_fired)
        registry.gauge("sim.now", fn=lambda: self.now)
        return self
