"""The simulation event loop."""

import heapq

from repro.common.errors import ReproError
from repro.sim.events import Event
from repro.sim.random import SplitRandom


class SimulationLimitError(ReproError):
    """The simulator processed more events than the configured bound."""


class SchedulePolicy:
    """Controlled-nondeterminism seam: orders same-timestamp events.

    The kernel fires events in ``(time, seq)`` order — a fixed, arbitrary
    serialisation of what a real system leaves unspecified.  A policy
    installed with :meth:`Simulator.set_policy` is consulted whenever two
    or more ready events share the minimum timestamp and picks which one
    fires first; the rest stay queued (and are offered again, minus the
    fired one).  This is the hook the bounded model checker
    (:mod:`repro.mc`) uses to enumerate message-delivery interleavings
    that random jitter would never sample.

    Policies must be deterministic functions of the choice sequence they
    are driven by, or replay guarantees break.
    """

    def choose(self, events):
        """Return the index (into *events*) of the event to fire next.

        *events* is a non-empty list of ready (non-cancelled) events that
        all carry the same timestamp, in ``seq`` order.  The default is
        FIFO: scheduling order, exactly what the kernel does without a
        policy.
        """
        return 0


class Simulator:
    """Single-threaded virtual-time event loop.

    All simulated components share one simulator.  Time is a float in
    seconds.  Components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop runs them in
    timestamp order via :meth:`run`.
    """

    def __init__(self, seed=0):
        self._queue = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self._live = 0           # not-yet-cancelled events in the queue
        self._policy = None      # optional SchedulePolicy (tie-breaking)
        self.random = SplitRandom(seed)

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past: %r < now=%r" % (time, self._now)
            )
        event = Event(time, self._seq, fn, args)
        event.on_cancel = self._note_cancelled
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def _note_cancelled(self):
        self._live -= 1

    def set_policy(self, policy):
        """Install (or with ``None`` remove) a :class:`SchedulePolicy`.

        Returns the previous policy.  Only same-timestamp tie-breaking
        goes through the policy; the single-ready-event fast path is
        unchanged, so simulations that never produce ties behave
        identically with any policy installed.
        """
        previous, self._policy = self._policy, policy
        return previous

    def pending(self):
        """Number of not-yet-cancelled events in the queue (O(1)).

        Maintained incrementally: schedule_at counts up, and every
        cancellation — explicit or the self-cancel inside
        :meth:`~repro.sim.events.Event.fire` — counts down through the
        event's ``on_cancel`` hook, so no heap scan is ever needed.
        """
        return self._live

    def iter_pending(self):
        """Not-yet-cancelled queued events, in ``(time, seq)`` order.

        A read-only view for inspection (the model checker fingerprints
        the in-flight message set with it); mutating the yielded events
        other than via :meth:`~repro.sim.events.Event.cancel` is not
        supported.
        """
        return sorted(event for event in self._queue if not event.cancelled)

    def run(self, until=None, max_events=None):
        """Process events in order.

        Stops when the queue drains, when virtual time would exceed *until*,
        or after *max_events* callbacks.  Returns the virtual time at which
        the loop stopped.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if self._policy is not None:
                event = self._resolve_tie(event)
            self._now = event.time
            event.fire()
            self._events_fired += 1
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationLimitError(
                    "stopped after %d events at t=%.6f" % (fired, self._now)
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _resolve_tie(self, head):
        """Let the installed policy pick among all events tied with *head*.

        *head* has already been popped.  Gathers every other ready event
        carrying the same timestamp, asks the policy to choose, fires the
        chosen one and pushes the rest back (their ``(time, seq)`` keys
        are unchanged, so relative order among the losers is preserved).
        """
        tied = [head]
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if event.time != head.time:
                break
            tied.append(heapq.heappop(self._queue))
        if len(tied) == 1:
            return head
        index = self._policy.choose(tied)
        if not 0 <= index < len(tied):
            raise ValueError(
                "policy chose %r out of %d tied events" % (index, len(tied))
            )
        chosen = tied.pop(index)
        for event in tied:
            heapq.heappush(self._queue, event)
        return chosen

    def run_for(self, duration):
        """Advance virtual time by *duration* seconds, processing events."""
        return self.run(until=self._now + duration)

    def attach_metrics(self, registry):
        """Expose kernel health to a metrics registry.

        Registers callback gauges (read lazily at snapshot time, so the
        event loop's hot path is untouched): ``sim.queue_depth``,
        ``sim.events_fired``, and ``sim.now``.
        """
        registry.gauge("sim.queue_depth", fn=self.pending)
        registry.gauge("sim.events_fired", fn=lambda: self.events_fired)
        registry.gauge("sim.now", fn=lambda: self.now)
        return self
