"""The simulation event loop."""

import heapq

from repro.common.errors import ReproError
from repro.sim.events import Event
from repro.sim.random import SplitRandom


class SimulationLimitError(ReproError):
    """The simulator processed more events than the configured bound."""


class Simulator:
    """Single-threaded virtual-time event loop.

    All simulated components share one simulator.  Time is a float in
    seconds.  Components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop runs them in
    timestamp order via :meth:`run`.
    """

    def __init__(self, seed=0):
        self._queue = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self.random = SplitRandom(seed)

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past: %r < now=%r" % (time, self._now)
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def pending(self):
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def run(self, until=None, max_events=None):
        """Process events in order.

        Stops when the queue drains, when virtual time would exceed *until*,
        or after *max_events* callbacks.  Returns the virtual time at which
        the loop stopped.
        """
        fired = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = event.time
            event.fire()
            self._events_fired += 1
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationLimitError(
                    "stopped after %d events at t=%.6f" % (fired, self._now)
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_for(self, duration):
        """Advance virtual time by *duration* seconds, processing events."""
        return self.run(until=self._now + duration)
