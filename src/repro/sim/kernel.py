"""The simulation event loop."""

import heapq

from repro.common.errors import ReproError
from repro.sim.events import Event
from repro.sim.random import SplitRandom

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class SimulationLimitError(ReproError):
    """The simulator processed more events than the configured bound."""


class SchedulePolicy:
    """Controlled-nondeterminism seam: orders same-timestamp events.

    The kernel fires events in ``(time, seq)`` order — a fixed, arbitrary
    serialisation of what a real system leaves unspecified.  A policy
    installed with :meth:`Simulator.set_policy` is consulted whenever two
    or more ready events share the minimum timestamp and picks which one
    fires first; the rest stay queued (and are offered again, minus the
    fired one).  This is the hook the bounded model checker
    (:mod:`repro.mc`) uses to enumerate message-delivery interleavings
    that random jitter would never sample.

    Policies must be deterministic functions of the choice sequence they
    are driven by, or replay guarantees break.
    """

    def choose(self, events):
        """Return the index (into *events*) of the event to fire next.

        *events* is a non-empty list of ready (non-cancelled) events that
        all carry the same timestamp, in ``seq`` order.  The default is
        FIFO: scheduling order, exactly what the kernel does without a
        policy.
        """
        return 0


class Simulator:
    """Single-threaded virtual-time event loop.

    All simulated components share one simulator.  Time is a float in
    seconds.  Components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop runs them in
    timestamp order via :meth:`run`.

    The heap holds ``(time, seq, event)`` tuples, so ordering is resolved
    by C-level tuple comparison (``seq`` is unique, so the event object
    itself is never compared).  Live-event accounting is three plain
    counters — scheduled, cancelled, fired — kept exact by the events
    themselves through a back-pointer, with no per-event hook closures.
    """

    def __init__(self, seed=0):
        self._queue = []         # heap of (time, seq, Event)
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0
        self._scheduled = 0      # total schedule_at calls
        self._cancelled = 0      # cancels of not-yet-fired events
        self._policy = None      # optional SchedulePolicy (tie-breaking)
        self._pending_view = None  # cached iter_pending result
        self.random = SplitRandom(seed)

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self):
        """Total number of events executed so far."""
        return self._events_fired

    def schedule(self, delay, fn, *args):
        """Run ``fn(*args)`` after *delay* seconds of virtual time."""
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        self._scheduled += 1
        event = Event(time, seq, fn, args, self)
        _heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time, fn, *args):
        """Run ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(
                "cannot schedule in the past: %r < now=%r" % (time, self._now)
            )
        seq = self._seq
        self._seq = seq + 1
        self._scheduled += 1
        event = Event(time, seq, fn, args, self)
        _heappush(self._queue, (time, seq, event))
        return event

    def set_policy(self, policy):
        """Install (or with ``None`` remove) a :class:`SchedulePolicy`.

        Returns the previous policy.  Only same-timestamp tie-breaking
        goes through the policy; the single-ready-event fast path is
        unchanged, so simulations that never produce ties behave
        identically with any policy installed.
        """
        previous, self._policy = self._policy, policy
        return previous

    def pending(self):
        """Number of not-yet-cancelled events in the queue (O(1)).

        ``scheduled - cancelled - fired``: schedule_at counts up, every
        cancellation counts through the event's kernel back-pointer, and
        the run loop counts firings — so no heap scan is ever needed.
        """
        return self._scheduled - self._cancelled - self._events_fired

    def iter_pending(self):
        """Not-yet-cancelled queued events, in ``(time, seq)`` order.

        A read-only view for inspection (the model checker fingerprints
        the in-flight message set with it); mutating the yielded events
        other than via :meth:`~repro.sim.events.Event.cancel` is not
        supported.

        The view is cached against the schedule/cancel/fire counters, so
        repeated calls at the same queue state (the explorer fingerprints
        an unchanged cluster more than once per decision step) cost a
        tuple compare instead of a sort; building it is one C-level sort
        of ``(time, seq, event)`` tuples, never a Python comparison.
        """
        key = (self._scheduled, self._cancelled, self._events_fired)
        cached = self._pending_view
        if cached is not None and cached[0] == key:
            return cached[1]
        entries = [entry for entry in self._queue if not entry[2].cancelled]
        entries.sort()
        view = tuple(entry[2] for entry in entries)
        self._pending_view = (key, view)
        return view

    def run(self, until=None, max_events=None):
        """Process events in order.

        Stops when the queue drains, when virtual time would exceed *until*,
        or after *max_events* callbacks.  Returns the virtual time at which
        the loop stopped.  *until* values at or before the current time
        fire only already-due events (time never moves backwards).
        """
        if until is not None and until < self._now:
            until = self._now     # fast-exit floor: never rewind the clock
        queue = self._queue
        if until is not None and (not queue or queue[0][0] > until):
            # Fast exit: nothing due on or before the horizon.  This is
            # the common case for the polling loops in run_until().
            if until > self._now:
                self._now = until
            return self._now
        heappop = _heappop
        # Sentinel bounds instead of per-event None checks: an unbounded
        # run compares against +inf, which is never exceeded.
        bound = _INF if until is None else until
        limit = _INF if max_events is None else max_events
        fired = 0
        # The policy is read once: set_policy is a between-runs operation
        # (the explorer installs its InterleavingPolicy before run()).
        policy = self._policy
        while queue:
            event_time, _seq, event = queue[0]
            if event.cancelled:
                heappop(queue)
                continue
            if event_time > bound:
                self._now = until
                return until
            heappop(queue)
            if policy is not None:
                event = self._resolve_tie(event_time, event)
                self._now = event_time
                event.fire()
            else:
                # Inlined Event.fire(): consume the event and invoke the
                # callback without a second method call per event.
                self._now = event_time
                fn = event.fn
                args = event.args
                event.cancelled = True
                event.fn = None
                event.args = ()
                event.kernel = None
                fn(*args)
            self._events_fired += 1
            fired += 1
            if fired >= limit:
                raise SimulationLimitError(
                    "stopped after %d events at t=%.6f" % (fired, self._now)
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _resolve_tie(self, time, head):
        """Let the installed policy pick among all events tied with *head*.

        *head* has already been popped.  Gathers every other ready event
        carrying the same timestamp, asks the policy to choose, fires the
        chosen one and pushes the rest back (their ``(time, seq)`` keys
        are unchanged, so relative order among the losers is preserved).
        """
        queue = self._queue
        tied = [head]
        while queue:
            entry = queue[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(queue)
                continue
            if entry[0] != time:
                break
            tied.append(event)
            heapq.heappop(queue)
        if len(tied) == 1:
            return head
        index = self._policy.choose(tied)
        if not 0 <= index < len(tied):
            raise ValueError(
                "policy chose %r out of %d tied events" % (index, len(tied))
            )
        chosen = tied.pop(index)
        for event in tied:
            heapq.heappush(queue, (event.time, event.seq, event))
        return chosen

    def run_for(self, duration):
        """Advance virtual time by *duration* seconds, processing events."""
        return self.run(until=self._now + duration)

    def attach_metrics(self, registry):
        """Expose kernel health to a metrics registry.

        Registers callback gauges (read lazily at snapshot time, so the
        event loop's hot path is untouched): ``sim.queue_depth``,
        ``sim.events_fired``, and ``sim.now``.
        """
        registry.gauge("sim.queue_depth", fn=self.pending)
        registry.gauge("sim.events_fired", fn=lambda: self.events_fired)
        registry.gauge("sim.now", fn=lambda: self.now)
        return self
