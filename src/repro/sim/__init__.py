"""Deterministic discrete-event simulation kernel.

The whole reproduction runs on virtual time: peers, disks, and network links
schedule callbacks on a single :class:`Simulator` event queue.  Given the
same seed, every run is bit-for-bit reproducible, which is what makes the
protocol tests and the failure-injection benchmarks meaningful.
"""

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.random import SplitRandom

__all__ = ["Event", "Simulator", "Process", "SplitRandom"]
