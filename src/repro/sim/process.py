"""Crash-recovery process abstraction.

A :class:`Process` owns a set of timers.  Crashing a process cancels all of
its timers and makes subsequent scheduling a no-op, which models the fact
that a crashed machine loses its volatile state (timers, in-flight work) but
keeps whatever it wrote to stable storage.
"""

from repro.common.errors import CrashedProcessError


class Process:
    """Base class for simulated crash-recovery processes."""

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.crashed = False
        self._timers = set()

    def set_timer(self, delay, fn, *args):
        """Schedule a callback that is automatically voided on crash."""
        if self.crashed:
            raise CrashedProcessError("%s is crashed" % self.name)
        event = None

        def wrapper():
            self._timers.discard(event)
            if not self.crashed:
                fn(*args)

        event = self.sim.schedule(delay, wrapper)
        self._timers.add(event)
        return event

    def cancel_timer(self, event):
        """Cancel a timer previously created with :meth:`set_timer`."""
        self._timers.discard(event)
        event.cancel()

    def crash(self):
        """Lose all volatile state.  Idempotent."""
        if self.crashed:
            return
        self.crashed = True
        for event in self._timers:
            event.cancel()
        self._timers.clear()
        self.on_crash()

    def recover(self):
        """Restart after a crash.  Subclasses re-initialise in on_recover."""
        if not self.crashed:
            return
        self.crashed = False
        self.on_recover()

    def on_crash(self):
        """Hook for subclasses; called once when the process crashes."""

    def on_recover(self):
        """Hook for subclasses; called once when the process restarts."""
