"""Small generic helpers shared by several subpackages."""


def majority(n):
    """Smallest number of members that forms a majority of *n*."""
    return n // 2 + 1


def pairwise_disjoint(groups):
    """True if the given iterables share no elements."""
    seen = set()
    for group in groups:
        for member in group:
            if member in seen:
                return False
            seen.add(member)
    return True


def clamp(value, low, high):
    """Restrict *value* to the inclusive range [low, high]."""
    if low > high:
        raise ValueError("empty range: low=%r high=%r" % (low, high))
    return max(low, min(high, value))


def fmt_bytes(n):
    """Human-readable byte count, e.g. ``fmt_bytes(2048) == '2.0KiB'``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            if unit == "B":
                return "%d%s" % (int(value), unit)
            return "%.1f%s" % (value, unit)
        value /= 1024.0
    raise AssertionError("unreachable")
