"""Exception hierarchy used across the reproduction.

A single root (:class:`ReproError`) makes it possible for callers to catch
"anything this library raises" without accidentally swallowing genuine
programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class CrashedProcessError(ReproError):
    """An operation was attempted on a crashed simulated process."""


class NotLeaderError(ReproError):
    """A leader-only operation was invoked on a non-leader peer."""


class SessionExpiredError(ReproError):
    """A client session has expired and can no longer be used."""


class StorageError(ReproError):
    """The persistence layer detected corruption or an invalid operation."""


class QuorumLostError(ReproError):
    """A leader lost contact with a quorum of followers."""


class ProtocolViolationError(ReproError):
    """A peer received a message that is illegal in its current state."""
