"""Shared low-level helpers: errors, identifiers, configuration utilities.

Everything in :mod:`repro.common` is dependency-free and safe to import from
any other subpackage.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    CrashedProcessError,
    NotLeaderError,
    SessionExpiredError,
    StorageError,
)
from repro.common.ids import NodeId, format_node, parse_node

__all__ = [
    "ReproError",
    "ConfigError",
    "CrashedProcessError",
    "NotLeaderError",
    "SessionExpiredError",
    "StorageError",
    "NodeId",
    "format_node",
    "parse_node",
]
