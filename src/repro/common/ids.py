"""Node identifiers.

Peers are identified by small integers (like ZooKeeper's ``myid``).  Clients
use a disjoint string namespace so that a client id can never collide with a
peer id inside the network routing table.
"""

from repro.common.errors import ConfigError

NodeId = int

_CLIENT_PREFIX = "client:"


def format_node(node_id):
    """Render a node id (peer int or client string) for log messages."""
    if isinstance(node_id, int):
        return "peer-%d" % node_id
    return str(node_id)


def parse_node(text):
    """Parse ``"peer-3"`` / ``"client:abc"`` back into a node id."""
    if text.startswith("peer-"):
        try:
            return int(text[len("peer-"):])
        except ValueError:
            raise ConfigError("malformed peer id: %r" % text)
    if text.startswith(_CLIENT_PREFIX):
        return text
    raise ConfigError("unrecognised node id: %r" % text)


def client_id(name):
    """Build the network address for a client endpoint."""
    return _CLIENT_PREFIX + str(name)


def is_client(node_id):
    """True if *node_id* addresses a client endpoint rather than a peer."""
    return isinstance(node_id, str) and node_id.startswith(_CLIENT_PREFIX)
