#!/usr/bin/env python
"""Guard the stable public API surface against unreviewed drift.

Snapshots ``repro.__all__`` plus the call signature of every exported
callable (classes snapshot their ``__init__``) and compares against the
committed ``scripts/api_snapshot.json``.  Any mismatch — a name added or
removed, a parameter renamed, a default changed, keyword-onlyness
altered — fails with a diff, so API changes only land together with a
reviewed snapshot update.

Usage::

    PYTHONPATH=src python scripts/check_public_api.py          # verify
    PYTHONPATH=src python scripts/check_public_api.py --update # re-snapshot

Runs in CI alongside the tier-1 tests (also wrapped by
``tests/test_public_api.py`` so a plain pytest run covers it).
"""

import inspect
import json
import os
import sys

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__),
                             "api_snapshot.json")


def describe_signature(obj):
    """A stable string form of *obj*'s call signature."""
    target = obj.__init__ if inspect.isclass(obj) else obj
    try:
        return str(inspect.signature(target))
    except (TypeError, ValueError):
        return "<unintrospectable>"


def current_surface():
    import repro

    surface = {"__all__": sorted(repro.__all__)}
    signatures = {}
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            signatures[name] = describe_signature(obj)
        else:
            signatures[name] = "<%s>" % type(obj).__name__
    surface["signatures"] = signatures
    return surface


def diff_surfaces(snapshot, current):
    problems = []
    old_names = set(snapshot["__all__"])
    new_names = set(current["__all__"])
    for name in sorted(old_names - new_names):
        problems.append("removed from __all__: %s" % name)
    for name in sorted(new_names - old_names):
        problems.append("added to __all__: %s" % name)
    old_sigs = snapshot["signatures"]
    new_sigs = current["signatures"]
    for name in sorted(old_names & new_names):
        if old_sigs.get(name) != new_sigs.get(name):
            problems.append(
                "signature drift: %s\n  snapshot: %s\n  current:  %s"
                % (name, old_sigs.get(name), new_sigs.get(name))
            )
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    current = current_surface()
    if "--update" in argv:
        with open(SNAPSHOT_PATH, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print("snapshot updated: %s (%d names)"
              % (SNAPSHOT_PATH, len(current["__all__"])))
        return 0
    if not os.path.exists(SNAPSHOT_PATH):
        print("missing %s; run with --update to create it"
              % SNAPSHOT_PATH, file=sys.stderr)
        return 2
    with open(SNAPSHOT_PATH, encoding="utf-8") as f:
        snapshot = json.load(f)
    problems = diff_surfaces(snapshot, current)
    if problems:
        print("public API drifted from scripts/api_snapshot.json:",
              file=sys.stderr)
        for problem in problems:
            print("- " + problem, file=sys.stderr)
        print("\nif intentional, rerun with --update and commit the "
              "new snapshot.", file=sys.stderr)
        return 1
    print("public API matches snapshot (%d names)"
          % len(current["__all__"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
