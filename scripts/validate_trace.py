#!/usr/bin/env python
"""Validate a JSONL trace file against the documented schema.

Usage::

    python scripts/validate_trace.py trace.jsonl

Checks every line against the format in docs/OBSERVABILITY.md:

- each line is a JSON object with exactly the keys
  ``t``, ``node``, ``kind``, ``fields``;
- ``t`` is a non-negative number, and timestamps never go backwards;
- ``node`` is an integer or null;
- ``kind`` is a non-empty dotted lowercase string from the documented
  catalogue (unknown kinds are an error — extend the catalogue and
  docs/OBSERVABILITY.md together);
- ``fields`` is a JSON object;
- commit-path kinds carry a well-formed ``zxid`` correlation field
  (``[epoch, counter]``, two non-negative integers) so the span
  builder (``repro profile``) can always correlate them;
- wire-level ``net.*`` kinds carry a positive integer ``msg_id`` so
  send/deliver/drop events pair up in the causality DAG;
- node-scoped kinds (everything except the cluster-wide
  ``fault.partition`` / ``fault.heal`` / ``fault.partition_oneway`` /
  ``fault.restore_links``) carry an integer ``node`` —
  an unattributed node-scoped event is useless to the health
  monitor's per-node detectors;
- per-node timestamps are monotonic too: events attributed to one
  node never go backwards relative to that node's own stream;
- a flight-recorder dump's ``recorder.dump`` marker — cluster-scoped,
  carrying a non-empty string ``reason`` — may appear at most once and
  only as the very last event, so a black box is recognisable by its
  tail and a truncated dump (marker missing or buried) fails loudly.

Exits 0 and prints a per-kind tally on success; exits 1 with the
offending line number on the first violation.
"""

import json
import re
import sys

# The documented event catalogue (docs/OBSERVABILITY.md).
KNOWN_KINDS = {
    "net.send", "net.deliver", "net.drop",
    "election.start", "election.decided",
    "leader.phase", "leader.newepoch", "leader.sync",
    "leader.established", "leader.propose",
    "leader.ack", "leader.quorum", "leader.commit", "leader.batch",
    "follower.sync", "follower.active", "follower.ack",
    "peer.state", "peer.looking", "peer.epoch", "peer.commit",
    "log.append", "log.durable", "log.flush",
    "fault.crash", "fault.recover", "fault.partition", "fault.heal",
    "fault.slow_disk", "fault.restore_disk",
    "fault.partition_oneway", "fault.restore_links", "fault.clock_skew",
    "snapshot.save", "compact.purge",
    "recorder.dump",
}

# Every kind is node-scoped except the cluster-wide fault events and
# the flight-recorder dump marker.
NODE_REQUIRED = KNOWN_KINDS - {
    "fault.partition", "fault.heal", "recorder.dump",
    "fault.partition_oneway", "fault.restore_links",
}

# Commit-path kinds must carry a zxid so spans can correlate them.
ZXID_REQUIRED = {
    "leader.propose", "leader.ack", "leader.quorum", "leader.commit",
    "follower.ack", "log.append", "log.durable", "peer.commit",
    "snapshot.save", "compact.purge",
}

# Wire-level kinds must carry the message id that pairs send/deliver.
MSG_ID_REQUIRED = {"net.send", "net.deliver", "net.drop"}

KIND_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _is_zxid(value):
    return (
        isinstance(value, list) and len(value) == 2
        and all(
            isinstance(part, int) and not isinstance(part, bool)
            and part >= 0
            for part in value
        )
    )


def validate(handle):
    """Yields nothing; raises ValueError at the first bad line."""
    counts = {}
    last_t = None
    last_t_by_node = {}
    marker_line = None
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError("line %d: not JSON: %s" % (lineno, exc))
        if not isinstance(record, dict):
            raise ValueError("line %d: not an object" % lineno)
        if set(record) != {"t", "node", "kind", "fields"}:
            raise ValueError(
                "line %d: keys %s != {t, node, kind, fields}"
                % (lineno, sorted(record))
            )
        t = record["t"]
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            raise ValueError("line %d: bad timestamp %r" % (lineno, t))
        node = record["node"]
        if node is not None and (
            not isinstance(node, int) or isinstance(node, bool)
        ):
            raise ValueError("line %d: bad node %r" % (lineno, node))
        # Per-node monotonicity first: a regression within one node's
        # stream is the more precise diagnosis.
        if node is not None:
            node_last = last_t_by_node.get(node)
            if node_last is not None and t < node_last:
                raise ValueError(
                    "line %d: node %d time went backwards (%r < %r)"
                    % (lineno, node, t, node_last)
                )
            last_t_by_node[node] = t
        if last_t is not None and t < last_t:
            raise ValueError(
                "line %d: time went backwards (%r < %r)"
                % (lineno, t, last_t)
            )
        last_t = t
        kind = record["kind"]
        if not isinstance(kind, str) or not KIND_RE.match(kind):
            raise ValueError("line %d: bad kind %r" % (lineno, kind))
        if kind not in KNOWN_KINDS:
            raise ValueError(
                "line %d: undocumented kind %r (update the catalogue "
                "and docs/OBSERVABILITY.md)" % (lineno, kind)
            )
        if marker_line is not None:
            raise ValueError(
                "line %d: event after the recorder.dump marker "
                "(line %d) — the marker must be the final event"
                % (lineno, marker_line)
            )
        if node is None and kind in NODE_REQUIRED:
            raise ValueError(
                "line %d: node-scoped kind %s has node=null"
                % (lineno, kind)
            )
        fields = record["fields"]
        if not isinstance(fields, dict):
            raise ValueError(
                "line %d: fields is %r, not an object"
                % (lineno, type(fields).__name__)
            )
        if kind in ZXID_REQUIRED and not _is_zxid(fields.get("zxid")):
            raise ValueError(
                "line %d: %s needs zxid=[epoch, counter], got %r"
                % (lineno, kind, fields.get("zxid"))
            )
        if kind == "recorder.dump":
            marker_line = lineno
            reason = fields.get("reason")
            if not isinstance(reason, str) or not reason:
                raise ValueError(
                    "line %d: recorder.dump needs a non-empty string "
                    "reason, got %r" % (lineno, reason)
                )
        if kind in MSG_ID_REQUIRED:
            msg_id = fields.get("msg_id")
            if (
                not isinstance(msg_id, int) or isinstance(msg_id, bool)
                or msg_id <= 0
            ):
                raise ValueError(
                    "line %d: %s needs a positive integer msg_id, got %r"
                    % (lineno, kind, msg_id)
                )
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: python scripts/validate_trace.py TRACE.jsonl",
              file=sys.stderr)
        return 2
    path = argv[1]
    with open(path, "r", encoding="utf-8") as handle:
        try:
            counts = validate(handle)
        except ValueError as exc:
            print("%s: INVALID: %s" % (path, exc), file=sys.stderr)
            return 1
    total = sum(counts.values())
    if total == 0:
        print("%s: INVALID: empty trace" % path, file=sys.stderr)
        return 1
    print("%s: OK (%d events, %d kinds)" % (path, total, len(counts)))
    for kind in sorted(counts):
        print("  %-24s %d" % (kind, counts[kind]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
