#!/usr/bin/env python
"""Tier-1 line-coverage gate with zero third-party dependencies.

The container deliberately ships no ``coverage`` package, so this script
carries its own measurement: a ``sys.settrace`` hook that records every
executed line in ``src/repro`` while the tier-1 pytest suite runs
in-process.  The denominator — the set of executable lines per file —
comes from compiling each source file and walking the code objects'
``co_lines()`` tables, which is the same notion of "line" the tracer
reports.

The committed floor lives in ``scripts/coverage_floor.json``.  The gate
fails when total coverage drops below it, which catches the classic
regression of landing a subsystem without tests.  It does *not* ratchet
automatically; raise the floor deliberately with ``--update`` after
coverage genuinely improves.

Usage:
    python scripts/check_coverage.py            # measure + gate
    python scripts/check_coverage.py --update   # rewrite the floor
    python scripts/check_coverage.py --report   # per-file table too
"""

import argparse
import json
import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src", "repro")
FLOOR_PATH = os.path.join(REPO, "scripts", "coverage_floor.json")
#: Slack (in percentage points) between a measured run and the floor it
#: writes — keeps the gate from flapping on trivially shifting tests.
UPDATE_SLACK = 2.0


def iter_source_files():
    for root, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def executable_lines(path):
    """All line numbers that can emit a trace event, per co_lines()."""
    with open(path, "r") as handle:
        source = handle.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


class LineCollector:
    """A settrace hook that only pays for frames inside src/repro."""

    def __init__(self):
        self.executed = {}  # filename -> set of line numbers

    def _local(self, frame, event, _arg):
        if event == "line":
            self.executed[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, _arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC):
            return None  # no local tracing: non-repro frames cost ~nothing
        self.executed.setdefault(filename, set())
        return self._local

    def install(self):
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)


def run_tier1_under_trace():
    import pytest

    collector = LineCollector()
    collector.install()
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider"])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print("tier-1 suite FAILED (exit %d); coverage not gated" % exit_code)
        raise SystemExit(exit_code)
    return collector.executed


def measure(executed):
    per_file = {}
    total_lines = total_hit = 0
    for path in iter_source_files():
        lines = executable_lines(path)
        if not lines:
            continue
        hit = executed.get(path, set()) & lines
        relative = os.path.relpath(path, REPO)
        per_file[relative] = (len(hit), len(lines))
        total_hit += len(hit)
        total_lines += len(lines)
    percent = 100.0 * total_hit / total_lines if total_lines else 0.0
    return percent, per_file


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed floor from this run")
    parser.add_argument("--report", action="store_true",
                        help="print the per-file coverage table")
    args = parser.parse_args(argv)

    os.chdir(REPO)
    sys.path.insert(0, os.path.join(REPO, "src"))
    executed = run_tier1_under_trace()
    percent, per_file = measure(executed)

    if args.report:
        width = max(len(name) for name in per_file)
        for name, (hit, lines) in sorted(
            per_file.items(), key=lambda item: item[1][0] / item[1][1]
        ):
            print("%-*s %5d/%5d  %5.1f%%"
                  % (width, name, hit, lines, 100.0 * hit / lines))

    print("total tier-1 line coverage: %.1f%%" % percent)
    if args.update:
        floor = round(percent - UPDATE_SLACK, 1)
        with open(FLOOR_PATH, "w") as handle:
            json.dump({"floor_percent": floor,
                       "measured_percent": round(percent, 1)}, handle,
                      indent=2)
            handle.write("\n")
        print("floor updated to %.1f%% (measured %.1f%% - %.1f slack)"
              % (floor, percent, UPDATE_SLACK))
        return 0

    with open(FLOOR_PATH) as handle:
        floor = json.load(handle)["floor_percent"]
    if percent < floor:
        print("FAIL: coverage %.1f%% fell below the committed floor %.1f%%"
              % (percent, floor))
        print("(raise tests, or lower the floor deliberately with --update)")
        return 1
    print("OK: floor is %.1f%%" % floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
