#!/usr/bin/env python
"""Gate benchmark runs against the committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_smoke.json
    python scripts/check_bench_regression.py BENCH_*.json --update

Each ``BENCH_<name>.json`` report (``repro profile --json`` /
``repro bench --json``; schema ``repro-bench/v1``) is compared against
its entry in ``benchmarks/baseline.json``.  Every metric present in the
baseline must be present in the run and agree within the per-metric
tolerance (symmetric relative error, so the gate catches regressions
*and* too-good-to-be-true jumps that usually mean the workload
changed).  Metrics only the run has are informational — they become
gated once ``--update`` records them.

The simulator runs on virtual time with seeded randomness, so runs are
deterministic per (scenario, seed) and the default tolerances can stay
tight; they absorb histogram-sketch error (~2%) and cross-version
``random`` drift, not real perf changes.

Exit codes: 0 all reports within tolerance, 1 at least one violation,
2 usage or file errors.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.bench.report import load_report  # noqa: E402

BASELINE_SCHEMA = "repro-bench-baseline/v1"
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks",
    "baseline.json",
)
#: Default symmetric relative tolerance per metric.
DEFAULT_TOLERANCE = 0.15
#: Scale floor so a zero baseline still tolerates float fuzz but flags
#: any metric that becomes materially non-zero.
ZERO_FLOOR = 1e-9


def load_baseline(path):
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            "%s: schema %r is not %r"
            % (path, baseline.get("schema"), BASELINE_SCHEMA)
        )
    if not isinstance(baseline.get("entries"), dict):
        raise ValueError("%s: missing entries object" % path)
    return baseline


def check_report(report, entry):
    """Compare one run against one baseline entry.

    Returns ``(rows, failures)`` where *rows* are
    ``(metric, base, run, delta, allowed, status)`` for every baseline
    metric and *failures* counts the violations.
    """
    base_metrics = entry["metrics"]
    run_metrics = report["metrics"]
    default = entry.get("tolerance", DEFAULT_TOLERANCE)
    overrides = entry.get("tolerances", {})
    rows = []
    failures = 0
    for metric in sorted(base_metrics):
        base = base_metrics[metric]
        allowed = overrides.get(metric, default)
        run = run_metrics.get(metric)
        if run is None:
            rows.append((metric, base, None, None, allowed, "MISSING"))
            failures += 1
            continue
        scale = max(abs(base), ZERO_FLOOR)
        delta = (run - base) / scale
        if abs(delta) > allowed:
            rows.append((metric, base, run, delta, allowed, "FAIL"))
            failures += 1
        else:
            rows.append((metric, base, run, delta, allowed, "ok"))
    return rows, failures


def render_rows(rows):
    lines = [
        "  %-34s %12s %12s %8s %8s  %s"
        % ("metric", "baseline", "run", "delta", "allowed", "")
    ]
    for metric, base, run, delta, allowed, status in rows:
        lines.append(
            "  %-34s %12.6g %12s %8s %7.0f%%  %s"
            % (
                metric, base,
                "-" if run is None else "%.6g" % run,
                "-" if delta is None else "%+.1f%%" % (delta * 100),
                allowed * 100,
                status if status != "ok" else "",
            )
        )
    return "\n".join(lines)


def update_baseline(path, reports, existing):
    """Record *reports* as the new baseline, keeping tolerance knobs."""
    entries = dict(existing.get("entries", {})) if existing else {}
    for report in reports:
        old = entries.get(report["name"], {})
        entry = {"metrics": report["metrics"]}
        if "tolerance" in old:
            entry["tolerance"] = old["tolerance"]
        if "tolerances" in old:
            entry["tolerances"] = old["tolerances"]
        entries[report["name"]] = entry
    baseline = {"schema": BASELINE_SCHEMA, "entries": entries}
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json reports against the committed "
                    "baseline",
    )
    parser.add_argument("reports", nargs="+", metavar="BENCH.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file "
                             "(default benchmarks/baseline.json)")
    parser.add_argument("--update", action="store_true",
                        help="record the runs as the new baseline "
                             "instead of checking")
    args = parser.parse_args(argv)

    try:
        reports = [load_report(path) for path in args.reports]
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    if args.update:
        existing = None
        if os.path.exists(args.baseline):
            try:
                existing = load_baseline(args.baseline)
            except ValueError as exc:
                print("error: %s" % exc, file=sys.stderr)
                return 2
        baseline = update_baseline(args.baseline, reports, existing)
        print("%s: recorded %s" % (
            args.baseline,
            ", ".join(sorted(baseline["entries"])),
        ))
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    total_failures = 0
    for path, report in zip(args.reports, reports):
        entry = baseline["entries"].get(report["name"])
        if entry is None:
            print("%s: FAIL: no baseline entry %r (run with --update "
                  "to record one)" % (path, report["name"]))
            total_failures += 1
            continue
        rows, failures = check_report(report, entry)
        verdict = "FAIL (%d violations)" % failures if failures else "OK"
        print("%s vs baseline %r: %s" % (path, report["name"], verdict))
        print(render_rows(rows))
        extra = sorted(set(report["metrics"]) - set(entry["metrics"]))
        if extra:
            print("  ungated metrics (absent from baseline): %s"
                  % ", ".join(extra))
        total_failures += failures
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
