"""Setuptools shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on machines where PEP 517 editable
builds are unavailable (e.g. offline boxes without `wheel`).
"""

from setuptools import setup

setup()
